//! Transformer decoder layer: multi-head causal self-attention plus a SwiGLU MLP,
//! each wrapped in a pre-RMSNorm residual block.
//!
//! Two execution modes are provided:
//!
//! * [`DecoderLayer::forward_cached`] — incremental decoding against any
//!   [`KvStore`] backend (contiguous or paged), used by the rollout engines
//!   (supports multi-token inputs so speculative verification can score a whole
//!   drafted block in one call).
//! * [`DecoderLayer::forward_train`] / [`DecoderLayer::backward`] — full-sequence
//!   causal forward with recorded intermediates and an exact manual backward pass,
//!   used by drafter training and the last-layer policy-gradient update.

use crate::kv_cache::KvStore;
use crate::ops::{
    rmsnorm_backward, rmsnorm_forward, rmsnorm_into, silu, softmax_in_place, swiglu_backward,
    swiglu_forward, RmsNormCache, SwiGluCache,
};
use crate::tensor::Mat;
use crate::workspace::LayerScratch;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyperparameters of a single decoder layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerConfig {
    /// Model (residual stream) width.
    pub hidden: usize,
    /// Number of attention heads. Must divide `hidden`.
    pub num_heads: usize,
    /// Width of the MLP intermediate projection.
    pub ffn_hidden: usize,
}

impl LayerConfig {
    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.hidden / self.num_heads
    }

    /// Validates invariants (head divisibility, non-zero sizes).
    pub fn validate(&self) -> Result<(), String> {
        if self.hidden == 0 || self.num_heads == 0 || self.ffn_hidden == 0 {
            return Err("layer dimensions must be non-zero".to_string());
        }
        if self.hidden % self.num_heads != 0 {
            return Err(format!(
                "hidden size {} not divisible by {} heads",
                self.hidden, self.num_heads
            ));
        }
        Ok(())
    }
}

/// Trainable parameters of a decoder layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecoderLayer {
    /// Layer hyperparameters.
    pub config: LayerConfig,
    /// RMSNorm gain applied before attention.
    pub attn_norm: Vec<f32>,
    /// Query projection, `hidden x hidden`.
    pub wq: Mat,
    /// Key projection, `hidden x hidden`.
    pub wk: Mat,
    /// Value projection, `hidden x hidden`.
    pub wv: Mat,
    /// Output projection, `hidden x hidden`.
    pub wo: Mat,
    /// RMSNorm gain applied before the MLP.
    pub mlp_norm: Vec<f32>,
    /// Gate projection, `hidden x ffn_hidden`.
    pub w_gate: Mat,
    /// Up projection, `hidden x ffn_hidden`.
    pub w_up: Mat,
    /// Down projection, `ffn_hidden x hidden`.
    pub w_down: Mat,
}

/// Gradients for every parameter of a [`DecoderLayer`], in the same layout.
#[derive(Debug, Clone)]
pub struct DecoderLayerGrads {
    /// Gradient of the pre-attention norm gain.
    pub attn_norm: Vec<f32>,
    /// Gradient of the query projection.
    pub wq: Mat,
    /// Gradient of the key projection.
    pub wk: Mat,
    /// Gradient of the value projection.
    pub wv: Mat,
    /// Gradient of the output projection.
    pub wo: Mat,
    /// Gradient of the pre-MLP norm gain.
    pub mlp_norm: Vec<f32>,
    /// Gradient of the gate projection.
    pub w_gate: Mat,
    /// Gradient of the up projection.
    pub w_up: Mat,
    /// Gradient of the down projection.
    pub w_down: Mat,
}

impl DecoderLayerGrads {
    /// Creates a zero-filled gradient container matching `layer`.
    pub fn zeros_like(layer: &DecoderLayer) -> Self {
        DecoderLayerGrads {
            attn_norm: vec![0.0; layer.attn_norm.len()],
            wq: Mat::zeros(layer.wq.rows(), layer.wq.cols()),
            wk: Mat::zeros(layer.wk.rows(), layer.wk.cols()),
            wv: Mat::zeros(layer.wv.rows(), layer.wv.cols()),
            wo: Mat::zeros(layer.wo.rows(), layer.wo.cols()),
            mlp_norm: vec![0.0; layer.mlp_norm.len()],
            w_gate: Mat::zeros(layer.w_gate.rows(), layer.w_gate.cols()),
            w_up: Mat::zeros(layer.w_up.rows(), layer.w_up.cols()),
            w_down: Mat::zeros(layer.w_down.rows(), layer.w_down.cols()),
        }
    }

    /// Accumulates `other` into `self`.
    pub fn accumulate(&mut self, other: &DecoderLayerGrads) {
        for (a, b) in self.attn_norm.iter_mut().zip(&other.attn_norm) {
            *a += b;
        }
        self.wq.add_assign(&other.wq);
        self.wk.add_assign(&other.wk);
        self.wv.add_assign(&other.wv);
        self.wo.add_assign(&other.wo);
        for (a, b) in self.mlp_norm.iter_mut().zip(&other.mlp_norm) {
            *a += b;
        }
        self.w_gate.add_assign(&other.w_gate);
        self.w_up.add_assign(&other.w_up);
        self.w_down.add_assign(&other.w_down);
    }

    /// Scales every gradient by `alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.attn_norm {
            *v *= alpha;
        }
        self.wq.scale_assign(alpha);
        self.wk.scale_assign(alpha);
        self.wv.scale_assign(alpha);
        self.wo.scale_assign(alpha);
        for v in &mut self.mlp_norm {
            *v *= alpha;
        }
        self.w_gate.scale_assign(alpha);
        self.w_up.scale_assign(alpha);
        self.w_down.scale_assign(alpha);
    }

    /// Global L2 norm across all gradients (for gradient clipping).
    pub fn global_norm(&self) -> f32 {
        let mut sq = 0.0f32;
        for v in &self.attn_norm {
            sq += v * v;
        }
        for m in [
            &self.wq,
            &self.wk,
            &self.wv,
            &self.wo,
            &self.w_gate,
            &self.w_up,
            &self.w_down,
        ] {
            sq += m.as_slice().iter().map(|v| v * v).sum::<f32>();
        }
        for v in &self.mlp_norm {
            sq += v * v;
        }
        sq.sqrt()
    }
}

/// Intermediates recorded during [`DecoderLayer::forward_train`].
#[derive(Debug, Clone)]
pub struct LayerTrainCache {
    input: Mat,
    attn_norm_cache: RmsNormCache,
    normed_input: Mat,
    q: Mat,
    k: Mat,
    v: Mat,
    /// Per-head attention probability matrices (row-major `T x T`).
    attn_probs: Vec<Mat>,
    attn_concat: Mat,
    mlp_norm_cache: RmsNormCache,
    mlp_cache: SwiGluCache,
}

impl DecoderLayer {
    /// Creates a layer with weights drawn from a small uniform distribution.
    pub fn random<R: Rng>(config: LayerConfig, rng: &mut R) -> Self {
        config.validate().expect("invalid layer config");
        let h = config.hidden;
        let f = config.ffn_hidden;
        let scale = 1.0 / (h as f32).sqrt();
        DecoderLayer {
            config,
            attn_norm: vec![1.0; h],
            wq: Mat::random_uniform(h, h, scale, rng),
            wk: Mat::random_uniform(h, h, scale, rng),
            wv: Mat::random_uniform(h, h, scale, rng),
            wo: Mat::random_uniform(h, h, scale, rng),
            mlp_norm: vec![1.0; h],
            w_gate: Mat::random_uniform(h, f, scale, rng),
            w_up: Mat::random_uniform(h, f, scale, rng),
            w_down: Mat::random_uniform(f, h, scale, rng),
        }
    }

    /// Number of scalar parameters in this layer.
    pub fn num_parameters(&self) -> usize {
        self.attn_norm.len()
            + self.mlp_norm.len()
            + self.wq.len()
            + self.wk.len()
            + self.wv.len()
            + self.wo.len()
            + self.w_gate.len()
            + self.w_up.len()
            + self.w_down.len()
    }

    /// Incremental forward pass over `new_hidden` (one row per new position),
    /// attending to everything already cached for `layer` in `kv` plus the new
    /// positions causally. Keys/values for the new positions are appended.
    ///
    /// Convenience wrapper over [`DecoderLayer::forward_cached_into`] that
    /// allocates a fresh scratch and output; hot loops should hold a
    /// [`LayerScratch`] (or a full `DecodeWorkspace`) and call the `_into`
    /// variant directly.
    pub fn forward_cached<K: KvStore>(&self, new_hidden: &Mat, kv: &mut K, layer: usize) -> Mat {
        let mut scratch = LayerScratch::new(
            self.config.hidden,
            self.config.ffn_hidden,
            kv.kv_len(layer) + new_hidden.rows(),
        );
        let mut out = Mat::zeros(new_hidden.rows(), self.config.hidden);
        self.forward_cached_into(new_hidden, kv, layer, &mut scratch, &mut out);
        out
    }

    /// Allocation-free incremental forward pass: identical numerics to
    /// [`DecoderLayer::forward_cached`], with every temporary taken from
    /// `scratch` and the result written into `out` (resized in place).
    ///
    /// Generic over the KV backend: the contiguous and paged stores walk the
    /// same position order, so their outputs are bit-identical.
    pub fn forward_cached_into<K: KvStore>(
        &self,
        new_hidden: &Mat,
        kv: &mut K,
        layer: usize,
        scratch: &mut LayerScratch,
        out: &mut Mat,
    ) {
        let cfg = &self.config;
        let past = kv.kv_len(layer);
        let n_new = new_hidden.rows();
        scratch.prepare(n_new, (past + n_new) * cfg.num_heads);
        out.set_rows(n_new, cfg.hidden);

        rmsnorm_into(new_hidden, &self.attn_norm, &mut scratch.normed);
        scratch.normed.matmul_into(&self.wq, &mut scratch.q);
        scratch.normed.matmul_into(&self.wk, &mut scratch.k);
        scratch.normed.matmul_into(&self.wv, &mut scratch.v);
        kv.kv_append(layer, &scratch.k, &scratch.v);

        let head_dim = cfg.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        scratch.attn_out.fill_zero();
        // All heads are processed per cache row in a single pass, so every key and
        // value row streams through the cache hierarchy exactly once per query.
        // Per-element accumulation order (increasing j) matches the head-at-a-time
        // loop bit for bit.
        for i in 0..n_new {
            let visible = past + i + 1;
            let q_row = scratch.q.row(i);
            let scores = &mut scratch.scores[..visible * cfg.num_heads];
            for j in 0..visible {
                let k_row = kv.kv_key(layer, j);
                for (h, (qs, ks)) in q_row
                    .chunks_exact(head_dim)
                    .zip(k_row.chunks_exact(head_dim))
                    .enumerate()
                {
                    scores[h * visible + j] = crate::tensor::dot(qs, ks) * scale;
                }
            }
            for h in 0..cfg.num_heads {
                softmax_in_place(&mut scores[h * visible..(h + 1) * visible]);
            }
            let out_row = scratch.attn_out.row_mut(i);
            for j in 0..visible {
                let v_row = kv.kv_value(layer, j);
                for (h, (os, vs)) in out_row
                    .chunks_exact_mut(head_dim)
                    .zip(v_row.chunks_exact(head_dim))
                    .enumerate()
                {
                    let w = scores[h * visible + j];
                    for (o, &v) in os.iter_mut().zip(vs.iter()) {
                        *o += w * v;
                    }
                }
            }
        }
        scratch
            .attn_out
            .matmul_into(&self.wo, &mut scratch.attn_proj);
        new_hidden.add_into(&scratch.attn_proj, &mut scratch.resid1);

        rmsnorm_into(&scratch.resid1, &self.mlp_norm, &mut scratch.mlp_normed);
        scratch
            .mlp_normed
            .matmul_into(&self.w_gate, &mut scratch.gate);
        scratch.mlp_normed.matmul_into(&self.w_up, &mut scratch.up);
        for ((h, &g), &u) in scratch
            .mlp_hidden
            .as_mut_slice()
            .iter_mut()
            .zip(scratch.gate.as_slice())
            .zip(scratch.up.as_slice())
        {
            *h = silu(g) * u;
        }
        scratch
            .mlp_hidden
            .matmul_into(&self.w_down, &mut scratch.mlp_out);
        scratch.resid1.add_into(&scratch.mlp_out, out);
    }

    /// Computes and appends only the key/value rows for `new_hidden` to the
    /// store, skipping the query projection, attention, and MLP entirely.
    ///
    /// Keys and values are per-position functions of the input (`rmsnorm(x) @ wk`
    /// / `@ wv`), so the appended rows are bit-identical to what a full
    /// [`DecoderLayer::forward_cached_into`] pass would cache. Used by the drafter
    /// to prime its context KV from target features, where the layer *output* for
    /// those positions is never consumed.
    pub fn append_kv<K: KvStore>(
        &self,
        new_hidden: &Mat,
        kv: &mut K,
        layer: usize,
        scratch: &mut LayerScratch,
    ) {
        let n_new = new_hidden.rows();
        scratch.prepare(n_new, 0);
        rmsnorm_into(new_hidden, &self.attn_norm, &mut scratch.normed);
        scratch.normed.matmul_into(&self.wk, &mut scratch.k);
        scratch.normed.matmul_into(&self.wv, &mut scratch.v);
        kv.kv_append(layer, &scratch.k, &scratch.v);
    }

    /// Full-sequence causal forward pass that records all intermediates needed by
    /// [`DecoderLayer::backward`].
    pub fn forward_train(&self, input: &Mat) -> (Mat, LayerTrainCache) {
        let cfg = &self.config;
        let t = input.rows();
        let (normed_input, attn_norm_cache) = rmsnorm_forward(input, &self.attn_norm);
        let q = normed_input.matmul(&self.wq);
        let k = normed_input.matmul(&self.wk);
        let v = normed_input.matmul(&self.wv);

        let head_dim = cfg.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut attn_probs = Vec::with_capacity(cfg.num_heads);
        let mut attn_concat = Mat::zeros(t, cfg.hidden);
        // Score buffer reused across every (head, row) pair.
        let mut scores = vec![0.0f32; t];
        for h in 0..cfg.num_heads {
            let off = h * head_dim;
            let mut probs = Mat::zeros(t, t);
            for i in 0..t {
                let q_row = &q.row(i)[off..off + head_dim];
                for (j, s) in scores.iter_mut().enumerate().take(i + 1) {
                    let k_row = &k.row(j)[off..off + head_dim];
                    *s = crate::tensor::dot(q_row, k_row) * scale;
                }
                softmax_in_place(&mut scores[..i + 1]);
                scores[i + 1..t].fill(0.0);
                probs.set_row(i, &scores);
            }
            for i in 0..t {
                let out_row = attn_concat.row_mut(i);
                let p_row = &probs.row(i)[..i + 1];
                for (j, &w) in p_row.iter().enumerate() {
                    let v_row = &v.row(j)[off..off + head_dim];
                    for d in 0..head_dim {
                        out_row[off + d] += w * v_row[d];
                    }
                }
            }
            attn_probs.push(probs);
        }

        let attn_proj = attn_concat.matmul(&self.wo);
        let resid1 = input.add(&attn_proj);
        let (mlp_normed, mlp_norm_cache) = rmsnorm_forward(&resid1, &self.mlp_norm);
        let (mlp_out, mlp_cache) =
            swiglu_forward(&mlp_normed, &self.w_gate, &self.w_up, &self.w_down);
        let output = resid1.add(&mlp_out);

        (
            output,
            LayerTrainCache {
                input: input.clone(),
                attn_norm_cache,
                normed_input,
                q,
                k,
                v,
                attn_probs,
                attn_concat,
                mlp_norm_cache,
                mlp_cache,
            },
        )
    }

    /// Exact backward pass matching [`DecoderLayer::forward_train`].
    ///
    /// Returns the gradient with respect to the layer input and the parameter
    /// gradients.
    pub fn backward(&self, cache: &LayerTrainCache, d_output: &Mat) -> (Mat, DecoderLayerGrads) {
        let cfg = &self.config;
        let t = cache.input.rows();
        let head_dim = cfg.head_dim();
        let scale = 1.0 / (head_dim as f32).sqrt();

        // output = resid1 + mlp_out: the upstream gradient flows into both the MLP
        // block and the residual stream (no copies needed — f32 addition is
        // exactly commutative, so accumulating the residual term into the
        // MLP-path gradient matches the original ordering bit for bit).
        let mlp_grads = swiglu_backward(
            &cache.mlp_cache,
            &self.w_gate,
            &self.w_up,
            &self.w_down,
            d_output,
        );
        let (mut d_resid1, d_mlp_norm) =
            rmsnorm_backward(&cache.mlp_norm_cache, &self.mlp_norm, &mlp_grads.d_input);
        d_resid1.add_assign(d_output);

        // resid1 = input + attn_concat @ wo
        let mut d_input = d_resid1.clone();
        let d_wo = cache.attn_concat.transposed_matmul(&d_resid1);
        let d_attn_concat = d_resid1.matmul_transposed(&self.wo);

        // Attention heads
        let mut d_q = Mat::zeros(t, cfg.hidden);
        let mut d_k = Mat::zeros(t, cfg.hidden);
        let mut d_v = Mat::zeros(t, cfg.hidden);
        // Row-level temporaries reused across every (head, row) pair.
        let mut d_probs_row = vec![0.0f32; t];
        let mut d_scores = vec![0.0f32; t];
        for h in 0..cfg.num_heads {
            let off = h * head_dim;
            let probs = &cache.attn_probs[h];
            for i in 0..t {
                // d_probs[i][j] = d_attn_concat[i, off..] . v[j, off..]
                let d_out_row = &d_attn_concat.row(i)[off..off + head_dim];
                let d_probs_row = &mut d_probs_row[..i + 1];
                for (j, dp) in d_probs_row.iter_mut().enumerate() {
                    let v_row = &cache.v.row(j)[off..off + head_dim];
                    *dp = crate::tensor::dot(d_out_row, v_row);
                }
                // d_v[j] += probs[i][j] * d_out_row
                let p_row = &probs.row(i)[..i + 1];
                for (j, &w) in p_row.iter().enumerate() {
                    let dv_row = &mut d_v.row_mut(j)[off..off + head_dim];
                    for d in 0..head_dim {
                        dv_row[d] += w * d_out_row[d];
                    }
                }
                // softmax backward over the visible prefix
                let inner: f32 = p_row
                    .iter()
                    .zip(d_probs_row.iter())
                    .map(|(&p, &dp)| p * dp)
                    .sum();
                let d_scores = &mut d_scores[..i + 1];
                for ((ds, &p), &dp) in d_scores
                    .iter_mut()
                    .zip(p_row.iter())
                    .zip(d_probs_row.iter())
                {
                    *ds = p * (dp - inner);
                }
                // scores[i][j] = (q[i] . k[j]) * scale
                let q_row = &cache.q.row(i)[off..off + head_dim];
                let dq_row = &mut d_q.row_mut(i)[off..off + head_dim];
                for (j, &ds) in d_scores.iter().enumerate() {
                    let k_row = &cache.k.row(j)[off..off + head_dim];
                    for d in 0..head_dim {
                        dq_row[d] += ds * scale * k_row[d];
                    }
                }
                for (j, &ds) in d_scores.iter().enumerate() {
                    let dk_row = &mut d_k.row_mut(j)[off..off + head_dim];
                    for d in 0..head_dim {
                        dk_row[d] += ds * scale * q_row[d];
                    }
                }
            }
        }

        // q = normed_input @ wq, etc.
        let d_wq = cache.normed_input.transposed_matmul(&d_q);
        let d_wk = cache.normed_input.transposed_matmul(&d_k);
        let d_wv = cache.normed_input.transposed_matmul(&d_v);
        let mut d_normed = d_q.matmul_transposed(&self.wq);
        d_normed.add_assign(&d_k.matmul_transposed(&self.wk));
        d_normed.add_assign(&d_v.matmul_transposed(&self.wv));
        let (d_input_from_norm, d_attn_norm) =
            rmsnorm_backward(&cache.attn_norm_cache, &self.attn_norm, &d_normed);
        d_input.add_assign(&d_input_from_norm);

        let grads = DecoderLayerGrads {
            attn_norm: d_attn_norm,
            wq: d_wq,
            wk: d_wk,
            wv: d_wv,
            wo: d_wo,
            mlp_norm: d_mlp_norm,
            w_gate: mlp_grads.d_w_gate,
            w_up: mlp_grads.d_w_up,
            w_down: mlp_grads.d_w_down,
        };
        (d_input, grads)
    }

    /// Applies a plain SGD update `w -= lr * grad` to every parameter.
    pub fn apply_sgd(&mut self, grads: &DecoderLayerGrads, lr: f32) {
        for (w, g) in self.attn_norm.iter_mut().zip(&grads.attn_norm) {
            *w -= lr * g;
        }
        self.wq.add_scaled(&grads.wq, -lr);
        self.wk.add_scaled(&grads.wk, -lr);
        self.wv.add_scaled(&grads.wv, -lr);
        self.wo.add_scaled(&grads.wo, -lr);
        for (w, g) in self.mlp_norm.iter_mut().zip(&grads.mlp_norm) {
            *w -= lr * g;
        }
        self.w_gate.add_scaled(&grads.w_gate, -lr);
        self.w_up.add_scaled(&grads.w_up, -lr);
        self.w_down.add_scaled(&grads.w_down, -lr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kv_cache::LayerKvCache;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn test_layer(seed: u64) -> DecoderLayer {
        let mut rng = StdRng::seed_from_u64(seed);
        DecoderLayer::random(
            LayerConfig {
                hidden: 8,
                num_heads: 2,
                ffn_hidden: 12,
            },
            &mut rng,
        )
    }

    #[test]
    fn config_validation() {
        assert!(LayerConfig {
            hidden: 8,
            num_heads: 3,
            ffn_hidden: 4
        }
        .validate()
        .is_err());
        assert!(LayerConfig {
            hidden: 8,
            num_heads: 2,
            ffn_hidden: 4
        }
        .validate()
        .is_ok());
        assert!(LayerConfig {
            hidden: 0,
            num_heads: 1,
            ffn_hidden: 4
        }
        .validate()
        .is_err());
    }

    #[test]
    fn cached_forward_matches_train_forward() {
        let layer = test_layer(42);
        let mut rng = StdRng::seed_from_u64(1);
        let seq = Mat::random_uniform(5, 8, 1.0, &mut rng);

        // Full-sequence training-mode forward.
        let (full_out, _) = layer.forward_train(&seq);

        // Incremental forward, one token at a time.
        let mut cache = LayerKvCache::new(8);
        let mut rows = Vec::new();
        for i in 0..seq.rows() {
            let step = seq.slice_rows(i, i + 1);
            let out = layer.forward_cached(&step, &mut cache, 0);
            rows.push(out);
        }
        for (i, row) in rows.iter().enumerate() {
            for c in 0..8 {
                assert!(
                    (row.get(0, c) - full_out.get(i, c)).abs() < 1e-4,
                    "mismatch at row {i} col {c}"
                );
            }
        }
    }

    #[test]
    fn cached_forward_multi_token_block_matches_single_steps() {
        let layer = test_layer(7);
        let mut rng = StdRng::seed_from_u64(2);
        let seq = Mat::random_uniform(6, 8, 1.0, &mut rng);

        let mut cache_a = LayerKvCache::new(8);
        let prefix = seq.slice_rows(0, 3);
        let _ = layer.forward_cached(&prefix, &mut cache_a, 0);
        let block = seq.slice_rows(3, 6);
        let block_out = layer.forward_cached(&block, &mut cache_a, 0);

        let mut cache_b = LayerKvCache::new(8);
        let mut singles = Vec::new();
        for i in 0..6 {
            let out = layer.forward_cached(&seq.slice_rows(i, i + 1), &mut cache_b, 0);
            singles.push(out);
        }
        for i in 0..3 {
            for c in 0..8 {
                assert!((block_out.get(i, c) - singles[3 + i].get(0, c)).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn backward_input_grad_matches_finite_difference() {
        let layer = test_layer(3);
        let mut rng = StdRng::seed_from_u64(4);
        let input = Mat::random_uniform(4, 8, 0.5, &mut rng);
        let d_out = Mat::random_uniform(4, 8, 1.0, &mut rng);
        let (_, cache) = layer.forward_train(&input);
        let (d_input, _) = layer.backward(&cache, &d_out);

        let loss = |m: &Mat| {
            let (y, _) = layer.forward_train(m);
            y.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let eps = 1e-2;
        for idx in (0..input.len()).step_by(5) {
            let mut plus = input.clone();
            plus.as_mut_slice()[idx] += eps;
            let mut minus = input.clone();
            minus.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let analytic = d_input.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + numeric.abs()),
                "idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn backward_weight_grad_matches_finite_difference() {
        let layer = test_layer(5);
        let mut rng = StdRng::seed_from_u64(6);
        let input = Mat::random_uniform(3, 8, 0.5, &mut rng);
        let d_out = Mat::random_uniform(3, 8, 1.0, &mut rng);
        let (_, cache) = layer.forward_train(&input);
        let (_, grads) = layer.backward(&cache, &d_out);

        let loss = |l: &DecoderLayer| {
            let (y, _) = l.forward_train(&input);
            y.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let eps = 1e-2;
        // Check a few entries of wq and w_down.
        for idx in (0..layer.wq.len()).step_by(17) {
            let mut plus = layer.clone();
            plus.wq.as_mut_slice()[idx] += eps;
            let mut minus = layer.clone();
            minus.wq.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let analytic = grads.wq.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + numeric.abs()),
                "wq idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
        for idx in (0..layer.w_down.len()).step_by(23) {
            let mut plus = layer.clone();
            plus.w_down.as_mut_slice()[idx] += eps;
            let mut minus = layer.clone();
            minus.w_down.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            let analytic = grads.w_down.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + numeric.abs()),
                "w_down idx {idx}: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn sgd_step_reduces_alignment_loss() {
        let mut layer = test_layer(11);
        let mut rng = StdRng::seed_from_u64(12);
        let input = Mat::random_uniform(4, 8, 0.5, &mut rng);
        let target = Mat::random_uniform(4, 8, 0.5, &mut rng);

        let loss_of = |l: &DecoderLayer| {
            let (y, _) = l.forward_train(&input);
            let diff = y.sub(&target);
            diff.as_slice().iter().map(|v| v * v).sum::<f32>()
        };
        let before = loss_of(&layer);
        for _ in 0..20 {
            let (y, cache) = layer.forward_train(&input);
            let d_out = y.sub(&target).scale(2.0);
            let (_, grads) = layer.backward(&cache, &d_out);
            layer.apply_sgd(&grads, 0.01);
        }
        let after = loss_of(&layer);
        assert!(
            after < before,
            "SGD failed to reduce loss: {before} -> {after}"
        );
    }

    #[test]
    fn grads_accumulate_and_scale() {
        let layer = test_layer(13);
        let mut rng = StdRng::seed_from_u64(14);
        let input = Mat::random_uniform(2, 8, 0.5, &mut rng);
        let d_out = Mat::random_uniform(2, 8, 1.0, &mut rng);
        let (_, cache) = layer.forward_train(&input);
        let (_, g) = layer.backward(&cache, &d_out);
        let mut acc = DecoderLayerGrads::zeros_like(&layer);
        acc.accumulate(&g);
        acc.accumulate(&g);
        acc.scale(0.5);
        for (a, b) in acc.wq.as_slice().iter().zip(g.wq.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
        assert!(acc.global_norm() > 0.0);
    }

    #[test]
    fn parameter_count_is_consistent() {
        let layer = test_layer(15);
        let h = 8usize;
        let f = 12usize;
        let expected = 2 * h + 4 * h * h + 2 * h * f + f * h;
        assert_eq!(layer.num_parameters(), expected);
    }
}
