//! SLO metrics: latency percentiles, goodput, and per-replica utilisation.
//!
//! Since the `tlt-obs` migration the per-replica tallies live in a
//! [`tlt_obs::MetricsRegistry`] owned by each engine ([`ReplicaMetrics`]);
//! [`ReplicaStats`] keeps its public shape and is materialised from the
//! registry at report time.

use crate::request::CompletedRequest;
use serde::{Deserialize, Serialize};
use tlt_obs::{
    CounterHandle, HistogramHandle, MaxGaugeHandle, MetricSample, MetricsRegistry, SumHandle,
};

/// Percentile of a float sample with linear interpolation (`q` in `[0, 100]`).
/// Returns `0.0` for an empty slice.
///
/// Sorts a copy on every call; when several percentiles of the same series are
/// needed, sort once and use [`percentile_sorted`] (or build a whole
/// [`LatencySummary`]) instead of re-sorting per percentile.
pub fn percentile_f64(values: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = values.to_vec();
    sort_latencies(&mut sorted);
    percentile_sorted(&sorted, q)
}

/// Sorts a latency series ascending (all values must be finite).
pub fn sort_latencies(values: &mut [f64]) {
    values.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
}

/// Percentile of an already ascending-sorted sample. `q` is clamped to
/// `[0, 100]`; a non-finite `q` is rejected rather than silently resolving to
/// the first element (`NaN.floor() as usize` is 0).
///
/// # Panics
///
/// Panics if `q` is NaN or infinite.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(q.is_finite(), "percentile rank must be finite, got {q}");
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Percentile summary of one latency dimension.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize)]
pub struct LatencySummary {
    /// Median.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Arithmetic mean.
    pub mean_s: f64,
    /// Worst observed value.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarises a sample; all-zero when empty.
    pub fn from_values(values: &[f64]) -> Self {
        let mut sorted: Vec<f64> = values.to_vec();
        Self::from_unsorted_mut(&mut sorted)
    }

    /// Summarises a sample by sorting it in place (no copy): every percentile is
    /// read from the same sorted buffer, so the series is sorted exactly once.
    pub fn from_unsorted_mut(values: &mut [f64]) -> Self {
        if values.is_empty() {
            return LatencySummary::default();
        }
        sort_latencies(values);
        LatencySummary {
            p50_s: percentile_sorted(values, 50.0),
            p95_s: percentile_sorted(values, 95.0),
            p99_s: percentile_sorted(values, 99.0),
            mean_s: values.iter().sum::<f64>() / values.len() as f64,
            max_s: *values.last().expect("non-empty"),
        }
    }
}

/// Latency service-level objective a request must meet to count towards goodput.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// Maximum acceptable time to first token, in seconds.
    pub ttft_s: f64,
    /// Maximum acceptable time per output token, in seconds.
    pub tpot_s: f64,
}

impl SloSpec {
    /// An interactive chat-style SLO.
    pub fn interactive() -> Self {
        SloSpec {
            ttft_s: 1.0,
            tpot_s: 0.05,
        }
    }

    /// Whether a completed request met both latency targets.
    pub fn met(&self, r: &CompletedRequest) -> bool {
        r.ttft_s() <= self.ttft_s && r.tpot_s() <= self.tpot_s
    }
}

/// Per-replica accounting collected by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ReplicaStats {
    /// Replica index.
    pub replica: usize,
    /// Requests completed by this replica.
    pub completed: usize,
    /// Requests dropped because they could never fit the KV budget.
    pub dropped: usize,
    /// Seconds the engine spent executing steps.
    pub busy_s: f64,
    /// Busy seconds divided by the simulation makespan.
    pub utilization: f64,
    /// Fraction of decode steps that ran speculatively.
    pub sd_step_fraction: f64,
    /// Mean accept length over speculative steps (1.0 when SD never ran).
    pub mean_accept_length: f64,
    /// Total preemption events.
    pub preemptions: u64,
    /// Crash-drained requests re-delivered *to* this replica by the frontend.
    pub failovers: u64,
    /// Times this replica crashed (fault injection).
    pub crashes: u64,
    /// Largest running batch observed.
    pub peak_running: usize,
    /// Largest KV-token footprint observed.
    pub peak_kv_tokens: usize,
    /// KV capacity in blocks (0 under token accounting).
    pub kv_block_budget: usize,
    /// Largest number of KV blocks charged (0 under token accounting).
    pub peak_kv_blocks: usize,
    /// Peak pool utilisation, `peak_kv_blocks / kv_block_budget` (0 under
    /// token accounting).
    pub pool_utilization: f64,
    /// Fraction of admitted prompt tokens served from resident prefix blocks.
    pub prefix_hit_rate: f64,
    /// Sequences handed off to a decode replica after prefill (disaggregated
    /// serving; 0 on monolithic replicas).
    pub migrations_out: u64,
    /// Migrated sequences landed on this replica (disaggregated serving).
    pub migrations_in: u64,
}

/// Aggregate result of one serving simulation.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    /// Requests that ran to completion, in finish order.
    pub completed: Vec<CompletedRequest>,
    /// Requests dropped at admission (could never fit a replica's KV budget).
    pub dropped: usize,
    /// Simulated seconds from the first arrival to the last completion.
    pub makespan_s: f64,
    /// Total output tokens produced.
    pub total_output_tokens: u64,
    /// Output tokens per second over the makespan.
    pub throughput_tokens_per_s: f64,
    /// Time-to-first-token summary.
    pub ttft: LatencySummary,
    /// Time-per-output-token summary.
    pub tpot: LatencySummary,
    /// End-to-end latency summary.
    pub e2e: LatencySummary,
    /// Fraction of completed requests meeting the SLO.
    pub slo_attainment: f64,
    /// SLO-meeting completions per second over the makespan.
    pub goodput_rps: f64,
    /// Per-replica accounting.
    pub replicas: Vec<ReplicaStats>,
}

impl ServeReport {
    /// Builds the aggregate report from completed requests and replica stats.
    pub fn build(
        mut completed: Vec<CompletedRequest>,
        dropped: usize,
        replicas: Vec<ReplicaStats>,
        slo: SloSpec,
    ) -> Self {
        completed.sort_by(|a, b| {
            a.finish_s
                .partial_cmp(&b.finish_s)
                .expect("finite finish times")
                .then(a.id.cmp(&b.id))
        });
        let makespan_s = completed.last().map(|r| r.finish_s).unwrap_or(0.0);
        let total_output_tokens: u64 = completed.iter().map(|r| r.output_len as u64).sum();
        let mut ttfts: Vec<f64> = completed.iter().map(CompletedRequest::ttft_s).collect();
        let mut tpots: Vec<f64> = completed.iter().map(CompletedRequest::tpot_s).collect();
        let mut e2es: Vec<f64> = completed.iter().map(CompletedRequest::e2e_s).collect();
        let met = completed.iter().filter(|r| slo.met(r)).count();
        let denom = makespan_s.max(1e-9);
        ServeReport {
            dropped,
            makespan_s,
            total_output_tokens,
            throughput_tokens_per_s: total_output_tokens as f64 / denom,
            ttft: LatencySummary::from_unsorted_mut(&mut ttfts),
            tpot: LatencySummary::from_unsorted_mut(&mut tpots),
            e2e: LatencySummary::from_unsorted_mut(&mut e2es),
            slo_attainment: if completed.is_empty() {
                0.0
            } else {
                met as f64 / completed.len() as f64
            },
            goodput_rps: met as f64 / denom,
            replicas,
            completed,
        }
    }

    /// Mean utilisation across replicas.
    pub fn mean_utilization(&self) -> f64 {
        if self.replicas.is_empty() {
            0.0
        } else {
            self.replicas.iter().map(|r| r.utilization).sum::<f64>() / self.replicas.len() as f64
        }
    }

    /// Mean speculative-step fraction across replicas.
    pub fn mean_sd_fraction(&self) -> f64 {
        if self.replicas.is_empty() {
            0.0
        } else {
            self.replicas
                .iter()
                .map(|r| r.sd_step_fraction)
                .sum::<f64>()
                / self.replicas.len() as f64
        }
    }

    /// Mean peak pool utilisation across replicas (0 under token accounting).
    pub fn mean_pool_utilization(&self) -> f64 {
        if self.replicas.is_empty() {
            0.0
        } else {
            self.replicas
                .iter()
                .map(|r| r.pool_utilization)
                .sum::<f64>()
                / self.replicas.len() as f64
        }
    }

    /// Mean prefix-cache hit rate across replicas.
    pub fn mean_prefix_hit_rate(&self) -> f64 {
        if self.replicas.is_empty() {
            0.0
        } else {
            self.replicas.iter().map(|r| r.prefix_hit_rate).sum::<f64>()
                / self.replicas.len() as f64
        }
    }
}

/// Accept-length histogram buckets (tokens committed per speculative step).
static ACCEPT_LEN_BUCKETS: [f64; 6] = [1.0, 1.5, 2.0, 3.0, 4.0, 6.0];

/// Step-duration histogram buckets, in seconds.
static STEP_DURATION_BUCKETS: [f64; 6] = [0.005, 0.01, 0.025, 0.05, 0.1, 0.25];

/// The per-replica metrics registry with its named handles. This is the
/// backing store for every [`ReplicaStats`] tally: the engine updates handles
/// on the hot path and [`ReplicaStats`] is read out at report time. Sums are
/// accumulated in the same order as the ad-hoc `f64` fields they replaced, so
/// reported values are bit-identical to the pre-registry ones.
#[derive(Debug, Clone)]
pub struct ReplicaMetrics {
    registry: MetricsRegistry,
    completed: CounterHandle,
    dropped: CounterHandle,
    decode_steps: CounterHandle,
    sd_steps: CounterHandle,
    preemptions: CounterHandle,
    crashes: CounterHandle,
    failovers: CounterHandle,
    prefix_hit_tokens: CounterHandle,
    admitted_prompt_tokens: CounterHandle,
    migrations_out: CounterHandle,
    migrations_in: CounterHandle,
    busy_s: SumHandle,
    peak_running: MaxGaugeHandle,
    peak_kv_tokens: MaxGaugeHandle,
    accept_len: HistogramHandle,
    step_duration_s: HistogramHandle,
}

impl Default for ReplicaMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl ReplicaMetrics {
    /// A fresh registry with every replica metric registered.
    pub fn new() -> Self {
        let mut registry = MetricsRegistry::new();
        ReplicaMetrics {
            completed: registry.counter("completed"),
            dropped: registry.counter("dropped"),
            decode_steps: registry.counter("decode_steps"),
            sd_steps: registry.counter("sd_steps"),
            preemptions: registry.counter("preemptions"),
            crashes: registry.counter("crashes"),
            failovers: registry.counter("failovers"),
            prefix_hit_tokens: registry.counter("prefix_hit_tokens"),
            admitted_prompt_tokens: registry.counter("admitted_prompt_tokens"),
            migrations_out: registry.counter("migrations_out"),
            migrations_in: registry.counter("migrations_in"),
            busy_s: registry.sum("busy_s"),
            peak_running: registry.max_gauge("peak_running"),
            peak_kv_tokens: registry.max_gauge("peak_kv_tokens"),
            accept_len: registry.histogram("accept_len", &ACCEPT_LEN_BUCKETS),
            step_duration_s: registry.histogram("step_duration_s", &STEP_DURATION_BUCKETS),
            registry,
        }
    }

    /// One request ran to completion.
    pub fn inc_completed(&mut self) {
        self.registry.inc(self.completed);
    }

    /// One request was dropped at admission.
    pub fn inc_dropped(&mut self) {
        self.registry.inc(self.dropped);
    }

    /// One decode step was scheduled (vanilla or speculative).
    pub fn inc_decode_steps(&mut self) {
        self.registry.inc(self.decode_steps);
    }

    /// One speculative step was scheduled, expecting `accept_len` tokens.
    pub fn observe_sd_step(&mut self, accept_len: f64) {
        self.registry.inc(self.sd_steps);
        self.registry.observe(self.accept_len, accept_len);
    }

    /// One running request was preempted back to the queue.
    pub fn inc_preemptions(&mut self) {
        self.registry.inc(self.preemptions);
    }

    /// The replica crashed.
    pub fn inc_crashes(&mut self) {
        self.registry.inc(self.crashes);
    }

    /// A crash-drained request was re-delivered to this replica.
    pub fn inc_failovers(&mut self) {
        self.registry.inc(self.failovers);
    }

    /// One prefilled sequence was handed off toward the decode pool.
    pub fn inc_migrations_out(&mut self) {
        self.registry.inc(self.migrations_out);
    }

    /// One migrated sequence landed on this replica.
    pub fn inc_migrations_in(&mut self) {
        self.registry.inc(self.migrations_in);
    }

    /// A step of `duration_s` completed.
    pub fn observe_step(&mut self, duration_s: f64) {
        self.registry.add_sum(self.busy_s, duration_s);
        self.registry.observe(self.step_duration_s, duration_s);
    }

    /// Prompt-token admission accounting: `cached` of `prompt` tokens came
    /// from resident prefix blocks.
    pub fn observe_admission(&mut self, prompt: u64, cached: u64) {
        self.registry.add(self.admitted_prompt_tokens, prompt);
        self.registry.add(self.prefix_hit_tokens, cached);
    }

    /// Raise the batch-size and KV-footprint high-watermarks.
    pub fn observe_peaks(&mut self, running: usize, kv_tokens: usize) {
        self.registry.observe_max(self.peak_running, running as u64);
        self.registry
            .observe_max(self.peak_kv_tokens, kv_tokens as u64);
    }

    /// Requests completed.
    pub fn completed(&self) -> u64 {
        self.registry.counter_value(self.completed)
    }

    /// Requests dropped at admission.
    pub fn dropped(&self) -> u64 {
        self.registry.counter_value(self.dropped)
    }

    /// Decode steps scheduled.
    pub fn decode_steps(&self) -> u64 {
        self.registry.counter_value(self.decode_steps)
    }

    /// Speculative steps scheduled.
    pub fn sd_steps(&self) -> u64 {
        self.registry.counter_value(self.sd_steps)
    }

    /// Preemption events.
    pub fn preemptions(&self) -> u64 {
        self.registry.counter_value(self.preemptions)
    }

    /// Crash events.
    pub fn crashes(&self) -> u64 {
        self.registry.counter_value(self.crashes)
    }

    /// Failover deliveries received.
    pub fn failovers(&self) -> u64 {
        self.registry.counter_value(self.failovers)
    }

    /// Sequences handed off toward the decode pool.
    pub fn migrations_out(&self) -> u64 {
        self.registry.counter_value(self.migrations_out)
    }

    /// Migrated sequences landed here.
    pub fn migrations_in(&self) -> u64 {
        self.registry.counter_value(self.migrations_in)
    }

    /// Seconds spent executing steps.
    pub fn busy_s(&self) -> f64 {
        self.registry.sum_value(self.busy_s)
    }

    /// Largest running batch observed.
    pub fn peak_running(&self) -> usize {
        self.registry.max_value(self.peak_running) as usize
    }

    /// Largest KV-token footprint observed.
    pub fn peak_kv_tokens(&self) -> usize {
        self.registry.max_value(self.peak_kv_tokens) as usize
    }

    /// Mean accept length over speculative steps (`fallback` when none ran).
    pub fn mean_accept_length_or(&self, fallback: f64) -> f64 {
        self.registry
            .histogram_value(self.accept_len)
            .mean_or(fallback)
    }

    /// Fraction of admitted prompt tokens served from resident prefix blocks.
    pub fn prefix_hit_rate(&self) -> f64 {
        let admitted = self.registry.counter_value(self.admitted_prompt_tokens);
        if admitted == 0 {
            0.0
        } else {
            self.registry.counter_value(self.prefix_hit_tokens) as f64 / admitted as f64
        }
    }

    /// Fraction of decode steps that ran speculatively.
    pub fn sd_step_fraction(&self) -> f64 {
        let steps = self.decode_steps();
        if steps == 0 {
            0.0
        } else {
            self.sd_steps() as f64 / steps as f64
        }
    }

    /// Flattened registry rows for the `--metrics` summary table.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(id: u64, arrival: f64, first: f64, finish: f64, out: usize) -> CompletedRequest {
        CompletedRequest {
            id,
            replica: 0,
            arrival_s: arrival,
            admitted_s: arrival,
            first_token_s: first,
            finish_s: finish,
            prompt_len: 64,
            output_len: out,
            preemptions: 0,
        }
    }

    #[test]
    fn percentile_f64_interpolates_and_handles_edges() {
        let v = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_f64(&v, 0.0), 10.0);
        assert_eq!(percentile_f64(&v, 100.0), 40.0);
        assert_eq!(percentile_f64(&v, 50.0), 25.0);
        assert_eq!(percentile_f64(&[], 50.0), 0.0);
    }

    #[test]
    fn summary_percentiles_come_from_one_sorted_buffer() {
        // p50/p95/p99 of a summary must equal the individually computed
        // percentiles, and from_unsorted_mut must not copy (it sorts in place).
        let values: Vec<f64> = (0..57).map(|i| ((i * 37) % 57) as f64 * 0.1).collect();
        let summary = LatencySummary::from_values(&values);
        assert_eq!(summary.p50_s, percentile_f64(&values, 50.0));
        assert_eq!(summary.p95_s, percentile_f64(&values, 95.0));
        assert_eq!(summary.p99_s, percentile_f64(&values, 99.0));
        let mut in_place = values.clone();
        let summary2 = LatencySummary::from_unsorted_mut(&mut in_place);
        assert_eq!(summary, summary2);
        assert!(in_place.windows(2).all(|w| w[0] <= w[1]), "sorted in place");
    }

    #[test]
    fn latency_summary_orders_percentiles() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_values(&values);
        assert!(s.p50_s < s.p95_s && s.p95_s < s.p99_s && s.p99_s <= s.max_s);
        assert!((s.mean_s - 50.5).abs() < 1e-9);
    }

    #[test]
    fn slo_accounts_both_dimensions() {
        let slo = SloSpec {
            ttft_s: 1.0,
            tpot_s: 0.1,
        };
        // 0.5 s TTFT, 0.05 s/token: meets.
        assert!(slo.met(&request(0, 0.0, 0.5, 0.5 + 0.05 * 9.0, 10)));
        // TTFT too slow.
        assert!(!slo.met(&request(1, 0.0, 2.0, 2.5, 10)));
        // TPOT too slow.
        assert!(!slo.met(&request(2, 0.0, 0.5, 0.5 + 0.5 * 9.0, 10)));
    }

    #[test]
    fn report_aggregates_and_sorts_by_finish() {
        let completed = vec![request(1, 0.0, 0.5, 4.0, 10), request(0, 0.0, 0.2, 2.0, 30)];
        let slo = SloSpec {
            ttft_s: 1.0,
            tpot_s: 1.0,
        };
        let report = ServeReport::build(completed, 0, Vec::new(), slo);
        assert_eq!(report.completed[0].id, 0);
        assert_eq!(report.total_output_tokens, 40);
        assert!((report.makespan_s - 4.0).abs() < 1e-12);
        assert!((report.throughput_tokens_per_s - 10.0).abs() < 1e-9);
        assert_eq!(report.slo_attainment, 1.0);
        assert!((report.goodput_rps - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_all_zero() {
        let report = ServeReport::build(Vec::new(), 0, Vec::new(), SloSpec::interactive());
        assert_eq!(report.total_output_tokens, 0);
        assert_eq!(report.slo_attainment, 0.0);
        assert_eq!(report.mean_utilization(), 0.0);
        assert_eq!(report.mean_sd_fraction(), 0.0);
    }

    #[test]
    fn percentile_of_single_element_is_that_element_for_every_rank() {
        for q in [0.0, 25.0, 50.0, 99.0, 100.0] {
            assert_eq!(percentile_sorted(&[7.5], q), 7.5);
        }
    }

    #[test]
    fn percentile_of_two_elements_interpolates_linearly() {
        let sorted = [10.0, 20.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 10.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 20.0);
        assert!((percentile_sorted(&sorted, 50.0) - 15.0).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 25.0) - 12.5).abs() < 1e-12);
        assert!((percentile_sorted(&sorted, 75.0) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn percentile_clamps_out_of_range_ranks() {
        let sorted = [1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&sorted, -10.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 250.0), 3.0);
    }

    #[test]
    fn percentile_of_empty_series_is_zero() {
        assert_eq!(percentile_sorted(&[], 50.0), 0.0);
        assert_eq!(percentile_f64(&[], 99.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "percentile rank must be finite")]
    fn nan_rank_is_rejected() {
        percentile_sorted(&[1.0, 2.0], f64::NAN);
    }

    #[test]
    #[should_panic(expected = "latencies are finite")]
    fn nan_value_is_rejected_by_the_sorter() {
        percentile_f64(&[1.0, f64::NAN, 2.0], 50.0);
    }

    #[test]
    fn summary_of_single_element_collapses_every_field() {
        let s = LatencySummary::from_values(&[3.25]);
        assert_eq!(s.p50_s, 3.25);
        assert_eq!(s.p95_s, 3.25);
        assert_eq!(s.p99_s, 3.25);
        assert_eq!(s.mean_s, 3.25);
        assert_eq!(s.max_s, 3.25);
    }

    #[test]
    fn summary_of_two_elements_is_consistent() {
        let s = LatencySummary::from_values(&[2.0, 4.0]);
        assert!((s.p50_s - 3.0).abs() < 1e-12);
        assert!((s.p95_s - 3.9).abs() < 1e-12);
        assert!((s.p99_s - 3.98).abs() < 1e-12);
        assert_eq!(s.mean_s, 3.0);
        assert_eq!(s.max_s, 4.0);
        // Percentiles are monotone in rank and bounded by the maximum.
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.p99_s && s.p99_s <= s.max_s);
    }
}
