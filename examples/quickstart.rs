//! Quickstart: speculative decoding against the tiny target model, losslessly.
//!
//! Run with `cargo run -p tlt --release --example quickstart`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt_draft::{DraftModel, FeatureSource};
use tlt_model::{ModelConfig, SamplingParams, TinyLm};
use tlt_rollout::{speculative_generate, vanilla_generate, SdStrategy, SpecDrafter};

fn main() {
    // 1. Build a target model and an EAGLE-style drafter tied to it.
    let target = TinyLm::new(ModelConfig::tiny(), 0);
    let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 1);
    println!(
        "target parameters: {}, drafter parameters: {} ({}x smaller)",
        target.num_parameters(),
        drafter.num_parameters(),
        target.num_parameters() / drafter.num_parameters()
    );

    // 2. Generate the same response with vanilla and speculative decoding (greedy
    //    decoding makes the losslessness visible token by token).
    let prompt = [1u32, 5, 9, 2];
    let params = SamplingParams::greedy();
    let mut rng = StdRng::seed_from_u64(0);
    let vanilla = vanilla_generate(&target, &prompt, 48, params, None, &mut rng);
    let mut rng = StdRng::seed_from_u64(0);
    let spec = speculative_generate(
        &target,
        &SpecDrafter::Learned(&drafter),
        &prompt,
        48,
        SdStrategy::default(),
        params,
        None,
        &mut rng,
    );

    println!(
        "vanilla output     : {:?}",
        &vanilla.tokens[..12.min(vanilla.tokens.len())]
    );
    println!(
        "speculative output : {:?}",
        &spec.tokens[..12.min(spec.tokens.len())]
    );
    assert_eq!(
        vanilla.tokens, spec.tokens,
        "speculative decoding is lossless"
    );

    println!(
        "target forward passes: vanilla {} vs speculative {} (mean accept length {:.2})",
        vanilla.target_steps,
        spec.target_steps,
        spec.mean_accept_length()
    );
}
