//! Recording serving runs into traces and replaying traces through the
//! serving frontends.
//!
//! Recording canonicalises the arrival stream into a [`Trace`] *first* and
//! then drives the simulation on the canonical stream, so a subsequent
//! [`replay_serving`] / [`replay_disagg`] of the same trace re-creates the
//! recorder's run bit for bit — completions, goodput, SLO attainment and the
//! SD accept bitstream all match exactly.

use crate::format::{Trace, TraceError};
use crate::stream::TraceReader;
use std::io::Read;
use tlt_obs::{record, EventKind, ObsEvent, Track, NO_REQ};
use tlt_serve::{
    ClusterReport, ClusterSim, DisaggConfig, ServeConfig, ServeReport, ServeRequest, ServeSim,
};
use tlt_workload::ArrivalFeed;

/// Drives a monolithic [`ServeSim`] over `arrivals` while recording the
/// workload (and the run's SD accept stream) into a trace named `name` with
/// time quantum `tick_ns`. Returns the run's report alongside the trace.
pub fn record_serving(
    name: &str,
    tick_ns: u64,
    config: &ServeConfig,
    arrivals: &[tlt_workload::RequestArrival],
) -> (ServeReport, Trace) {
    let mut trace = Trace::from_arrivals(name, tick_ns, arrivals);
    let mut sim = ServeSim::new(config);
    for arrival in trace.arrivals() {
        sim.advance_before(arrival.time_s());
        sim.offer(ServeRequest::from_arrival(arrival));
    }
    sim.run_until_drained();
    trace.set_sd_accepts(sim.sd_accept_trace());
    (sim.into_report(), trace)
}

/// Disaggregated counterpart of [`record_serving`]: drives a [`ClusterSim`]
/// and records the workload plus the decode pool's SD accept stream.
pub fn record_disagg(
    name: &str,
    tick_ns: u64,
    config: DisaggConfig,
    arrivals: &[tlt_workload::RequestArrival],
) -> (ClusterReport, Trace) {
    let mut trace = Trace::from_arrivals(name, tick_ns, arrivals);
    let mut sim = ClusterSim::new(config);
    for arrival in trace.arrivals() {
        sim.advance_before(arrival.time_s());
        sim.offer(ServeRequest::from_arrival(arrival));
    }
    sim.run_until_drained();
    trace.set_sd_accepts(sim.sd_accept_trace());
    (sim.into_report(), trace)
}

/// Re-drives a monolithic frontend from a recorded trace. Emits a
/// [`EventKind::Replay`] marker on the frontend track, then runs the exact
/// drive loop of the recorder, so an unmodified trace reproduces the
/// recorder's report bit for bit.
pub fn replay_serving(trace: &Trace, config: &ServeConfig) -> ServeReport {
    record(
        ObsEvent::instant(0.0, Track::Frontend, EventKind::Replay, NO_REQ)
            .with_args(trace.arrivals().len() as f64, trace.tick_ns() as f64),
    );
    let mut sim = ServeSim::new(config);
    for arrival in trace.arrivals() {
        sim.advance_before(arrival.time_s());
        sim.offer(ServeRequest::from_arrival(arrival));
    }
    sim.run_until_drained();
    sim.into_report()
}

/// Streamed counterpart of [`replay_serving`]: drives the frontend straight
/// from a [`TraceReader`], so peak memory is the reader's fixed chunk buffer
/// plus the live simulator state — the arrival vector is never materialised.
///
/// The drive loop and the [`EventKind::Replay`] marker are identical to the
/// in-memory path (the marker's request count comes from the header, which the
/// reader verifies against the stream), so replaying the same trace streamed
/// or in-memory produces bit-identical reports and observability streams. A
/// decode or checksum error surfaces as `Err` after the simulator has consumed
/// the arrivals seen so far.
pub fn replay_serving_streamed<R: Read>(
    reader: &mut TraceReader<R>,
    config: &ServeConfig,
) -> Result<ServeReport, TraceError> {
    record(
        ObsEvent::instant(0.0, Track::Frontend, EventKind::Replay, NO_REQ)
            .with_args(reader.request_count() as f64, reader.tick_ns() as f64),
    );
    let mut sim = ServeSim::new(config);
    let mut decode_err = None;
    let mut feed = std::iter::from_fn(|| match reader.next_arrival() {
        Ok(next) => next,
        Err(e) => {
            decode_err = Some(e);
            None
        }
    });
    while let Some(arrival) = feed.next_arrival() {
        sim.advance_before(arrival.time_s());
        sim.offer(ServeRequest::from_arrival(&arrival));
    }
    if let Some(e) = decode_err {
        return Err(e);
    }
    sim.run_until_drained();
    Ok(sim.into_report())
}

/// Disaggregated counterpart of [`replay_serving`].
pub fn replay_disagg(trace: &Trace, config: DisaggConfig) -> ClusterReport {
    record(
        ObsEvent::instant(0.0, Track::Frontend, EventKind::Replay, NO_REQ)
            .with_args(trace.arrivals().len() as f64, trace.tick_ns() as f64),
    );
    let mut sim = ClusterSim::new(config);
    for arrival in trace.arrivals() {
        sim.advance_before(arrival.time_s());
        sim.offer(ServeRequest::from_arrival(arrival));
    }
    sim.run_until_drained();
    sim.into_report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_gpusim::{GpuType, LlmCostModel};
    use tlt_model::ModelSpec;
    use tlt_rollout::{SdManagerConfig, SdMode};
    use tlt_workload::{generate_arrivals, ArrivalConfig};

    fn config() -> ServeConfig {
        let cost = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1);
        let mut config = ServeConfig::new(cost, 2);
        config.kv_memory_fraction = 0.3;
        config.sd_mode = SdMode::Adaptive {
            config: SdManagerConfig::default(),
        };
        config
    }

    #[test]
    fn replay_of_an_unmodified_recording_matches_the_recorded_run() {
        let arrivals = generate_arrivals(&ArrivalConfig::constant(6.0, 20.0, 17));
        let config = config();
        let (recorded, trace) = record_serving("rt", 1, &config, &arrivals);
        let replayed = replay_serving(&trace, &config);
        assert_eq!(replayed.completed, recorded.completed);
        assert_eq!(replayed.goodput_rps, recorded.goodput_rps);
        assert_eq!(replayed.slo_attainment, recorded.slo_attainment);
    }

    #[test]
    fn recording_captures_an_sd_stream_when_the_config_speculates() {
        let arrivals = generate_arrivals(&ArrivalConfig::constant(4.0, 15.0, 3));
        let (_, trace) = record_serving("sd", 1_000, &config(), &arrivals);
        let accepts = trace.sd_accepts().expect("recorded runs carry SD streams");
        // The default adaptive config speculates at low load.
        assert!(!accepts.is_empty());
        assert!(accepts.iter().all(|&a| a >= 1));
    }
}
