//! Lock-cheap metrics registry: counters, gauges, and fixed-bucket histograms.
//!
//! The registry is a single-owner value (`&mut self` on the hot path), so an
//! update is one indexed add on a `Vec` — no locks, no hashing, no allocation
//! after registration. Components that need concurrent access own one registry
//! each (e.g. one per serving replica) and merge at report time.
//!
//! Float accumulation (`SumHandle`, histogram sums) happens in observation
//! order, so values that previously lived as ad-hoc `f64` tallies stay
//! bit-identical after migrating onto the registry.

/// Handle to a monotone `u64` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterHandle(usize);

/// Handle to an `f64` running sum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SumHandle(usize);

/// Handle to a high-watermark gauge (`u64`, keeps the max ever observed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaxGaugeHandle(usize);

/// Handle to a fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramHandle(usize);

#[derive(Debug, Clone, PartialEq)]
struct Metric<T> {
    name: &'static str,
    value: T,
}

/// A histogram over fixed, registration-time bucket bounds. An observation
/// `v` lands in the first bucket with `v <= bound`; values above the last
/// bound land in the implicit overflow bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    name: &'static str,
    bounds: &'static [f64],
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Upper bucket bounds.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// Per-bucket observation counts (`bounds.len() + 1` entries; the last is
    /// the overflow bucket).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of observed values, or `fallback` when empty.
    pub fn mean_or(&self, fallback: f64) -> f64 {
        if self.count == 0 {
            fallback
        } else {
            self.sum / self.count as f64
        }
    }
}

/// One row of [`MetricsRegistry::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (histograms expand to `<name>.count` / `.sum` / `.mean`).
    pub name: String,
    /// Metric kind: `counter`, `sum`, `max`, or `histogram`.
    pub kind: &'static str,
    /// Current value.
    pub value: f64,
}

/// Single-owner metrics registry. Register handles up front, then update
/// through them on the hot path.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MetricsRegistry {
    counters: Vec<Metric<u64>>,
    sums: Vec<Metric<f64>>,
    maxes: Vec<Metric<u64>>,
    histograms: Vec<Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter starting at 0.
    pub fn counter(&mut self, name: &'static str) -> CounterHandle {
        self.counters.push(Metric { name, value: 0 });
        CounterHandle(self.counters.len() - 1)
    }

    /// Register an `f64` sum starting at 0.
    pub fn sum(&mut self, name: &'static str) -> SumHandle {
        self.sums.push(Metric { name, value: 0.0 });
        SumHandle(self.sums.len() - 1)
    }

    /// Register a high-watermark gauge starting at 0.
    pub fn max_gauge(&mut self, name: &'static str) -> MaxGaugeHandle {
        self.maxes.push(Metric { name, value: 0 });
        MaxGaugeHandle(self.maxes.len() - 1)
    }

    /// Register a histogram over `bounds` (must be sorted ascending).
    pub fn histogram(&mut self, name: &'static str, bounds: &'static [f64]) -> HistogramHandle {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        self.histograms.push(Histogram {
            name,
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        });
        HistogramHandle(self.histograms.len() - 1)
    }

    /// Increment a counter by 1.
    #[inline]
    pub fn inc(&mut self, h: CounterHandle) {
        self.counters[h.0].value += 1;
    }

    /// Increment a counter by `n`.
    #[inline]
    pub fn add(&mut self, h: CounterHandle, n: u64) {
        self.counters[h.0].value += n;
    }

    /// Add `v` to a running sum.
    #[inline]
    pub fn add_sum(&mut self, h: SumHandle, v: f64) {
        self.sums[h.0].value += v;
    }

    /// Raise a high-watermark gauge to at least `v`.
    #[inline]
    pub fn observe_max(&mut self, h: MaxGaugeHandle, v: u64) {
        let slot = &mut self.maxes[h.0].value;
        if v > *slot {
            *slot = v;
        }
    }

    /// Record `v` into a histogram.
    #[inline]
    pub fn observe(&mut self, h: HistogramHandle, v: f64) {
        let hist = &mut self.histograms[h.0];
        let mut bucket = hist.bounds.len();
        for (i, bound) in hist.bounds.iter().enumerate() {
            if v <= *bound {
                bucket = i;
                break;
            }
        }
        hist.counts[bucket] += 1;
        hist.sum += v;
        hist.count += 1;
    }

    /// Current counter value.
    pub fn counter_value(&self, h: CounterHandle) -> u64 {
        self.counters[h.0].value
    }

    /// Current sum value.
    pub fn sum_value(&self, h: SumHandle) -> f64 {
        self.sums[h.0].value
    }

    /// Current high-watermark value.
    pub fn max_value(&self, h: MaxGaugeHandle) -> u64 {
        self.maxes[h.0].value
    }

    /// Histogram state.
    pub fn histogram_value(&self, h: HistogramHandle) -> &Histogram {
        &self.histograms[h.0]
    }

    /// All metrics flattened into display rows, in registration order.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let mut out = Vec::new();
        for m in &self.counters {
            out.push(MetricSample {
                name: m.name.to_string(),
                kind: "counter",
                value: m.value as f64,
            });
        }
        for m in &self.sums {
            out.push(MetricSample {
                name: m.name.to_string(),
                kind: "sum",
                value: m.value,
            });
        }
        for m in &self.maxes {
            out.push(MetricSample {
                name: m.name.to_string(),
                kind: "max",
                value: m.value as f64,
            });
        }
        for h in &self.histograms {
            out.push(MetricSample {
                name: format!("{}.count", h.name),
                kind: "histogram",
                value: h.count as f64,
            });
            out.push(MetricSample {
                name: format!("{}.sum", h.name),
                kind: "histogram",
                value: h.sum,
            });
            out.push(MetricSample {
                name: format!("{}.mean", h.name),
                kind: "histogram",
                value: h.mean_or(0.0),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_sums_and_gauges_update_through_handles() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("steps");
        let s = reg.sum("busy_s");
        let g = reg.max_gauge("peak_running");
        reg.inc(c);
        reg.add(c, 4);
        reg.add_sum(s, 0.25);
        reg.add_sum(s, 0.5);
        reg.observe_max(g, 3);
        reg.observe_max(g, 2);
        assert_eq!(reg.counter_value(c), 5);
        assert_eq!(reg.sum_value(s), 0.75);
        assert_eq!(reg.max_value(g), 3);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        static BOUNDS: [f64; 3] = [1.0, 4.0, 16.0];
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("accept_len", &BOUNDS);
        for v in [0.5, 1.0, 3.0, 16.0, 99.0] {
            reg.observe(h, v);
        }
        let hist = reg.histogram_value(h);
        assert_eq!(hist.counts(), &[2, 1, 1, 1]);
        assert_eq!(hist.count(), 5);
        assert_eq!(hist.sum(), 119.5);
        assert_eq!(hist.mean_or(0.0), 119.5 / 5.0);
        assert_eq!(
            reg.histogram_value(h).bounds(),
            &BOUNDS[..],
            "bounds are fixed at registration"
        );
    }

    #[test]
    fn snapshot_flattens_in_registration_order() {
        static BOUNDS: [f64; 1] = [1.0];
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("completed");
        let h = reg.histogram("accept_len", &BOUNDS);
        reg.inc(c);
        reg.observe(h, 2.0);
        let names: Vec<String> = reg.snapshot().into_iter().map(|s| s.name).collect();
        assert_eq!(
            names,
            vec![
                "completed",
                "accept_len.count",
                "accept_len.sum",
                "accept_len.mean"
            ]
        );
    }

    #[test]
    fn empty_histogram_uses_fallback_mean() {
        static BOUNDS: [f64; 1] = [1.0];
        let mut reg = MetricsRegistry::new();
        let h = reg.histogram("accept_len", &BOUNDS);
        assert_eq!(reg.histogram_value(h).mean_or(1.0), 1.0);
    }
}
