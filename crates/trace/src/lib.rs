//! # tlt-trace
//!
//! Trace-driven workload record & replay for the TLT serving subsystem.
//!
//! Every scheduler comparison before this crate re-synthesised its arrival
//! stream, so cross-PR comparisons conflated scheduler changes with workload
//! drift. This crate makes the workload a first-class, versioned artifact:
//!
//! - [`Trace`] — the **TLTR v1** compact binary format (delta-encoded arrival
//!   ticks, varint token counts, prefix-relation back-references, an optional
//!   unary SD accept bitstream, FNV-1a 64 checksum), a few bytes per request
//!   in the spirit of cbp-experiments' 0.1–1.2 bits/branch traces.
//! - [`record_serving`] / [`record_disagg`] — run a simulation while
//!   capturing its workload (and SD accept stream) into a trace.
//! - [`replay_serving`] / [`replay_disagg`] — re-drive a frontend from a
//!   trace, bit-deterministically; an unmodified recording reproduces the
//!   recorder's report exactly.
//! - [`TraceReader`] / [`TraceWriter`] / [`replay_serving_streamed`] —
//!   chunked, constant-memory TLTR I/O: replay a million-request trace
//!   through a fixed 64 KiB window without ever materialising the arrival
//!   vector.
//! - Transforms ([`Trace::rate_scaled`], [`Trace::storm_injected`],
//!   [`Trace::tenant_shuffled`]) — deterministic workload variants.
//! - [`CorpusPreset`] — the four pinned workloads committed under `corpus/`;
//!   [`write_derived_trace`] scales them to a derived million-request stream
//!   with a pinned checksum.
//!
//! ```
//! use tlt_trace::{CorpusPreset, Trace};
//!
//! let trace = CorpusPreset::Chat.build();
//! let decoded = Trace::from_bytes(&trace.to_bytes()).unwrap();
//! assert_eq!(decoded, trace);
//! assert!(decoded.stats().bytes_per_request() <= 8.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod format;
pub mod million;
pub mod record;
pub mod stream;
pub mod transform;

pub use corpus::{CorpusPreset, CORPUS_TICK_NS};
pub use format::{Trace, TraceError, TraceStats, MAGIC, MAX_SD_ACCEPT, PREFIX_WINDOW, VERSION};
pub use million::{
    derived_trace_checksum, write_derived_trace, MILLION_CHECKSUM, MILLION_REQUESTS,
};
pub use record::{
    record_disagg, record_serving, replay_disagg, replay_serving, replay_serving_streamed,
};
pub use stream::{TraceReader, TraceWriter, DEFAULT_CHUNK_BYTES};
