//! Key/value cache used for incremental (autoregressive) decoding.
//!
//! Speculative decoding appends keys/values for drafted tokens during verification
//! and must be able to roll back the entries of rejected tokens, so the cache
//! exposes [`LayerKvCache::truncate`] in addition to append.

use crate::tensor::Mat;

/// Backend-neutral KV storage interface the model decodes through.
///
/// Two backends implement it: the contiguous [`KvCache`] (one `Vec` per layer)
/// and the paged [`crate::paged_kv::PagedKv`] view (block tables over a shared
/// [`crate::paged_kv::PagedKvPool`]). Rows are always read in position order
/// (`kv_key(layer, 0..len)`), so both backends produce bit-identical attention
/// output. A bare [`LayerKvCache`] also implements the trait as a single-layer
/// store (layer index 0), which is how the drafter's own KV runs through the
/// shared layer kernels.
pub trait KvStore {
    /// Positions cached across every layer (the sequence length).
    fn kv_seq_len(&self) -> usize;
    /// Positions cached for `layer` (equal to [`KvStore::kv_seq_len`] between
    /// forward passes; lower layers lead during a pass).
    fn kv_len(&self, layer: usize) -> usize;
    /// Appends one key/value row per new position to `layer`.
    fn kv_append(&mut self, layer: usize, keys: &Mat, values: &Mat);
    /// Key row of `layer` at position `idx`.
    fn kv_key(&self, layer: usize, idx: usize) -> &[f32];
    /// Value row of `layer` at position `idx`.
    fn kv_value(&self, layer: usize, idx: usize) -> &[f32];
    /// Rolls every layer back to `new_len` positions.
    fn kv_truncate(&mut self, new_len: usize);
}

/// Per-layer key/value cache holding one row per cached position.
#[derive(Debug, Clone, Default)]
pub struct LayerKvCache {
    hidden: usize,
    keys: Vec<f32>,
    values: Vec<f32>,
    len: usize,
}

impl LayerKvCache {
    /// Creates an empty cache for vectors of dimension `hidden`.
    pub fn new(hidden: usize) -> Self {
        LayerKvCache {
            hidden,
            keys: Vec::new(),
            values: Vec::new(),
            len: 0,
        }
    }

    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Hidden dimension of cached vectors.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Appends a key/value row pair.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not have length `hidden`.
    pub fn append(&mut self, key: &[f32], value: &[f32]) {
        assert_eq!(key.len(), self.hidden, "key length mismatch");
        assert_eq!(value.len(), self.hidden, "value length mismatch");
        self.keys.extend_from_slice(key);
        self.values.extend_from_slice(value);
        self.len += 1;
    }

    /// Appends every row of the given key/value matrices in one copy per buffer
    /// (no per-row re-copy).
    ///
    /// # Panics
    ///
    /// Panics if the matrices disagree in row count or are not `hidden` wide.
    pub fn append_rows(&mut self, keys: &Mat, values: &Mat) {
        assert_eq!(keys.rows(), values.rows(), "key/value row mismatch");
        assert_eq!(keys.cols(), self.hidden, "key length mismatch");
        assert_eq!(values.cols(), self.hidden, "value length mismatch");
        self.keys.extend_from_slice(keys.as_slice());
        self.values.extend_from_slice(values.as_slice());
        self.len += keys.rows();
    }

    /// Pre-allocates room for `total_positions` cached positions so steady-state
    /// appends never reallocate.
    pub fn reserve(&mut self, total_positions: usize) {
        let target = total_positions * self.hidden;
        if target > self.keys.len() {
            self.keys.reserve(target - self.keys.len());
        }
        if target > self.values.len() {
            self.values.reserve(target - self.values.len());
        }
    }

    /// Key row at position `idx`.
    pub fn key(&self, idx: usize) -> &[f32] {
        &self.keys[idx * self.hidden..(idx + 1) * self.hidden]
    }

    /// Value row at position `idx`.
    pub fn value(&self, idx: usize) -> &[f32] {
        &self.values[idx * self.hidden..(idx + 1) * self.hidden]
    }

    /// Shrinks the cache to `new_len` positions (used to roll back rejected
    /// speculative tokens). A no-op when `new_len >= len`.
    pub fn truncate(&mut self, new_len: usize) {
        if new_len >= self.len {
            return;
        }
        self.keys.truncate(new_len * self.hidden);
        self.values.truncate(new_len * self.hidden);
        self.len = new_len;
    }

    /// Removes all cached entries.
    pub fn clear(&mut self) {
        self.keys.clear();
        self.values.clear();
        self.len = 0;
    }

    /// Approximate memory footprint of the cache in bytes.
    pub fn memory_bytes(&self) -> usize {
        (self.keys.len() + self.values.len()) * std::mem::size_of::<f32>()
    }

    /// Positions the cache can hold before its key buffer reallocates — what
    /// [`LayerKvCache::reserve`] actually obtained.
    pub fn capacity_positions(&self) -> usize {
        self.keys.capacity() / self.hidden.max(1)
    }
}

impl KvStore for LayerKvCache {
    fn kv_seq_len(&self) -> usize {
        self.len
    }

    fn kv_len(&self, layer: usize) -> usize {
        debug_assert_eq!(layer, 0, "LayerKvCache is a single-layer store");
        self.len
    }

    fn kv_append(&mut self, layer: usize, keys: &Mat, values: &Mat) {
        debug_assert_eq!(layer, 0, "LayerKvCache is a single-layer store");
        self.append_rows(keys, values);
    }

    #[inline]
    fn kv_key(&self, layer: usize, idx: usize) -> &[f32] {
        debug_assert_eq!(layer, 0, "LayerKvCache is a single-layer store");
        self.key(idx)
    }

    #[inline]
    fn kv_value(&self, layer: usize, idx: usize) -> &[f32] {
        debug_assert_eq!(layer, 0, "LayerKvCache is a single-layer store");
        self.value(idx)
    }

    fn kv_truncate(&mut self, new_len: usize) {
        self.truncate(new_len);
    }
}

/// Full-model KV cache: one [`LayerKvCache`] per decoder layer.
#[derive(Debug, Clone, Default)]
pub struct KvCache {
    layers: Vec<LayerKvCache>,
}

impl KvCache {
    /// Creates a cache with `num_layers` empty per-layer caches.
    pub fn new(num_layers: usize, hidden: usize) -> Self {
        KvCache {
            layers: (0..num_layers).map(|_| LayerKvCache::new(hidden)).collect(),
        }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Sequence length currently cached (taken from the first layer).
    pub fn seq_len(&self) -> usize {
        self.layers.first().map_or(0, LayerKvCache::len)
    }

    /// Immutable access to the cache of `layer`.
    pub fn layer(&self, layer: usize) -> &LayerKvCache {
        &self.layers[layer]
    }

    /// Mutable access to the cache of `layer`.
    pub fn layer_mut(&mut self, layer: usize) -> &mut LayerKvCache {
        &mut self.layers[layer]
    }

    /// Pre-allocates every layer cache for `total_positions` positions.
    pub fn reserve(&mut self, total_positions: usize) {
        for layer in &mut self.layers {
            layer.reserve(total_positions);
        }
    }

    /// Truncates every layer cache to `new_len` positions.
    pub fn truncate(&mut self, new_len: usize) {
        for layer in &mut self.layers {
            layer.truncate(new_len);
        }
    }

    /// Clears every layer cache.
    pub fn clear(&mut self) {
        for layer in &mut self.layers {
            layer.clear();
        }
    }

    /// Total memory footprint across layers in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.layers.iter().map(LayerKvCache::memory_bytes).sum()
    }
}

impl KvStore for KvCache {
    fn kv_seq_len(&self) -> usize {
        self.seq_len()
    }

    fn kv_len(&self, layer: usize) -> usize {
        self.layers[layer].len()
    }

    fn kv_append(&mut self, layer: usize, keys: &Mat, values: &Mat) {
        self.layers[layer].append_rows(keys, values);
    }

    #[inline]
    fn kv_key(&self, layer: usize, idx: usize) -> &[f32] {
        self.layers[layer].key(idx)
    }

    #[inline]
    fn kv_value(&self, layer: usize, idx: usize) -> &[f32] {
        self.layers[layer].value(idx)
    }

    fn kv_truncate(&mut self, new_len: usize) {
        self.truncate(new_len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn append_and_read_back() {
        let mut cache = LayerKvCache::new(3);
        cache.append(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        cache.append(&[7.0, 8.0, 9.0], &[1.0, 1.0, 1.0]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.key(1), &[7.0, 8.0, 9.0]);
        assert_eq!(cache.value(0), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn truncate_rolls_back_entries() {
        let mut cache = LayerKvCache::new(2);
        for i in 0..5 {
            cache.append(&[i as f32, 0.0], &[0.0, i as f32]);
        }
        cache.truncate(2);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.key(1), &[1.0, 0.0]);
        // truncating to a larger size is a no-op
        cache.truncate(10);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn full_cache_tracks_all_layers() {
        let mut cache = KvCache::new(4, 2);
        for layer in 0..4 {
            cache.layer_mut(layer).append(&[1.0, 2.0], &[3.0, 4.0]);
        }
        assert_eq!(cache.seq_len(), 1);
        assert_eq!(cache.num_layers(), 4);
        cache.truncate(0);
        assert_eq!(cache.seq_len(), 0);
        assert_eq!(cache.memory_bytes(), 0);
    }

    #[test]
    fn memory_bytes_counts_keys_and_values() {
        let mut cache = LayerKvCache::new(4);
        cache.append(&[0.0; 4], &[0.0; 4]);
        assert_eq!(cache.memory_bytes(), 2 * 4 * 4);
    }

    #[test]
    #[should_panic(expected = "key length mismatch")]
    fn append_wrong_width_panics() {
        let mut cache = LayerKvCache::new(3);
        cache.append(&[1.0], &[1.0, 2.0, 3.0]);
    }
}
