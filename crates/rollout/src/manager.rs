//! Adaptive SD Manager (§5.1).
//!
//! Per decode iteration the manager decides (a) whether speculative decoding is
//! active at all — SD only pays off once the number of running requests drops below
//! an elastic threshold (default 32), (b) which drafter to use — the learned adaptive
//! drafter when one is available and warm, otherwise the model-free n-gram fallback,
//! and (c) which SD strategy to run — delegated to the BEG-MAB tuner.

use crate::mab::{BegMabConfig, BegMabSelector, StepObservation};
use crate::spec::SdStrategy;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Which drafter backs speculative decoding for a given step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DrafterChoice {
    /// The learned adaptive (EAGLE-style) drafter.
    Learned,
    /// The model-free n-gram drafter (fallback / TLT-Base).
    ModelFree,
}

/// The manager's decision for one generation step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SdDecision {
    /// Run vanilla decoding (SD disabled for this step).
    Vanilla,
    /// Run speculative decoding with the given drafter and strategy.
    Speculative {
        /// Which drafter proposes tokens.
        drafter: DrafterChoice,
        /// Which strategy (depth / top-K / verify budget) to use.
        strategy: SdStrategy,
    },
}

/// Configuration of the adaptive SD manager.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SdManagerConfig {
    /// SD activates only when running requests drop below this threshold
    /// (the paper's elastic mechanism, default 32).
    pub elastic_threshold: usize,
    /// Whether a learned drafter is available (false during the first RL steps and
    /// for the TLT-Base baseline).
    pub learned_drafter_available: bool,
    /// Whether the model-free drafter may serve as a fallback.
    pub model_free_fallback: bool,
    /// BEG-MAB tuner configuration.
    pub mab: BegMabConfig,
}

impl Default for SdManagerConfig {
    fn default() -> Self {
        SdManagerConfig {
            elastic_threshold: 32,
            learned_drafter_available: true,
            model_free_fallback: true,
            mab: BegMabConfig::default(),
        }
    }
}

/// The adaptive SD manager.
#[derive(Debug, Clone)]
pub struct AdaptiveSdManager {
    config: SdManagerConfig,
    selector: BegMabSelector,
    decisions: u64,
    speculative_decisions: u64,
}

impl AdaptiveSdManager {
    /// Creates a manager with the default strategy set.
    pub fn new(config: SdManagerConfig) -> Self {
        AdaptiveSdManager {
            config,
            selector: BegMabSelector::with_default_strategies(config.mab),
            decisions: 0,
            speculative_decisions: 0,
        }
    }

    /// Creates a manager over a custom strategy set and batch thresholds.
    pub fn with_strategies(
        config: SdManagerConfig,
        strategies: &[SdStrategy],
        thresholds: &[usize],
    ) -> Self {
        AdaptiveSdManager {
            config,
            selector: BegMabSelector::new(strategies, thresholds, config.mab),
            decisions: 0,
            speculative_decisions: 0,
        }
    }

    /// Current configuration.
    pub fn config(&self) -> SdManagerConfig {
        self.config
    }

    /// Marks the learned drafter as (un)available (e.g. after its first warm-up
    /// training session completes, or while its weights are being updated).
    pub fn set_learned_drafter_available(&mut self, available: bool) {
        self.config.learned_drafter_available = available;
    }

    /// Decides how to run the next generation step for `running_requests` sequences.
    pub fn decide<R: Rng>(&mut self, running_requests: usize, rng: &mut R) -> SdDecision {
        self.decisions += 1;
        if running_requests == 0 {
            return SdDecision::Vanilla;
        }
        if running_requests > self.config.elastic_threshold {
            return SdDecision::Vanilla;
        }
        let drafter = if self.config.learned_drafter_available {
            DrafterChoice::Learned
        } else if self.config.model_free_fallback {
            DrafterChoice::ModelFree
        } else {
            return SdDecision::Vanilla;
        };
        let strategy = self.selector.select(running_requests, rng);
        self.speculative_decisions += 1;
        SdDecision::Speculative { drafter, strategy }
    }

    /// Feeds back the outcome of a speculative step so the tuner can adapt.
    pub fn record(&mut self, strategy: &SdStrategy, obs: StepObservation) {
        self.selector.record(strategy, obs);
    }

    /// Fraction of decisions that enabled speculative decoding.
    pub fn speculative_fraction(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.speculative_decisions as f64 / self.decisions as f64
        }
    }

    /// Access to the underlying tuner (for inspection in experiments).
    pub fn selector(&self) -> &BegMabSelector {
        &self.selector
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sd_only_activates_below_elastic_threshold() {
        let mut manager = AdaptiveSdManager::new(SdManagerConfig::default());
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(manager.decide(128, &mut rng), SdDecision::Vanilla);
        assert_eq!(manager.decide(33, &mut rng), SdDecision::Vanilla);
        assert!(matches!(
            manager.decide(32, &mut rng),
            SdDecision::Speculative { .. }
        ));
        assert!(matches!(
            manager.decide(1, &mut rng),
            SdDecision::Speculative { .. }
        ));
    }

    #[test]
    fn model_free_fallback_used_before_drafter_is_ready() {
        let mut manager = AdaptiveSdManager::new(SdManagerConfig {
            learned_drafter_available: false,
            ..SdManagerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(1);
        match manager.decide(8, &mut rng) {
            SdDecision::Speculative { drafter, .. } => {
                assert_eq!(drafter, DrafterChoice::ModelFree)
            }
            other => panic!("expected speculative decision, got {other:?}"),
        }
        manager.set_learned_drafter_available(true);
        match manager.decide(8, &mut rng) {
            SdDecision::Speculative { drafter, .. } => assert_eq!(drafter, DrafterChoice::Learned),
            other => panic!("expected speculative decision, got {other:?}"),
        }
    }

    #[test]
    fn no_drafter_at_all_falls_back_to_vanilla() {
        let mut manager = AdaptiveSdManager::new(SdManagerConfig {
            learned_drafter_available: false,
            model_free_fallback: false,
            ..SdManagerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(manager.decide(4, &mut rng), SdDecision::Vanilla);
        assert_eq!(manager.speculative_fraction(), 0.0);
    }

    #[test]
    fn strategy_depends_on_batch_size() {
        let mut manager = AdaptiveSdManager::new(SdManagerConfig {
            mab: BegMabConfig {
                epsilon: 0.0,
                window: 4,
            },
            ..SdManagerConfig::default()
        });
        let mut rng = StdRng::seed_from_u64(3);
        let small = match manager.decide(1, &mut rng) {
            SdDecision::Speculative { strategy, .. } => strategy,
            _ => panic!("expected SD"),
        };
        let large = match manager.decide(30, &mut rng) {
            SdDecision::Speculative { strategy, .. } => strategy,
            _ => panic!("expected SD"),
        };
        assert!(small.tokens_to_verify > large.tokens_to_verify);
    }

    #[test]
    fn empty_batch_is_vanilla() {
        let mut manager = AdaptiveSdManager::new(SdManagerConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(manager.decide(0, &mut rng), SdDecision::Vanilla);
    }
}

#[cfg(test)]
mod props {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    proptest! {
        /// Elastic activation is monotone in the running-request count: for a fixed
        /// config, once SD is disabled at some `n >= 1` running requests it stays
        /// disabled at every `m > n` (speculation never *re-activates* as load
        /// grows). `n = 0` is excluded: an empty batch is trivially vanilla yet SD
        /// may activate as soon as one request runs.
        #[test]
        fn sd_disablement_is_monotone_in_load(
            threshold in 0usize..96,
            learned in 0u8..2,
            fallback in 0u8..2,
            seed in 0u64..1_000,
        ) {
            let mut manager = AdaptiveSdManager::new(SdManagerConfig {
                elastic_threshold: threshold,
                learned_drafter_available: learned == 1,
                model_free_fallback: fallback == 1,
                ..SdManagerConfig::default()
            });
            let mut rng = StdRng::seed_from_u64(seed);
            let mut disabled_seen = false;
            for n in 1usize..=192 {
                let disabled = matches!(manager.decide(n, &mut rng), SdDecision::Vanilla);
                if disabled_seen {
                    prop_assert!(
                        disabled,
                        "SD re-activated at n={n} (threshold {threshold}, learned {learned}, fallback {fallback})"
                    );
                }
                disabled_seen = disabled_seen || disabled;
            }
        }

        /// The learned drafter is never chosen while it is unavailable, whatever the
        /// load or the fallback setting.
        #[test]
        fn learned_drafter_never_chosen_when_unavailable(
            threshold in 1usize..96,
            fallback in 0u8..2,
            loads in proptest::collection::vec(0usize..192, 1..32),
            seed in 0u64..1_000,
        ) {
            let mut manager = AdaptiveSdManager::new(SdManagerConfig {
                elastic_threshold: threshold,
                learned_drafter_available: false,
                model_free_fallback: fallback == 1,
                ..SdManagerConfig::default()
            });
            let mut rng = StdRng::seed_from_u64(seed);
            for n in loads {
                match manager.decide(n, &mut rng) {
                    SdDecision::Speculative { drafter, .. } => {
                        prop_assert_ne!(drafter, DrafterChoice::Learned);
                        prop_assert!(fallback == 1, "speculated without any drafter");
                    }
                    SdDecision::Vanilla => {}
                }
            }
        }
    }
}
