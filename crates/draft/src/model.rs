//! EAGLE-style single-layer draft model.
//!
//! The drafter mirrors the paper's §4.1 design: it reuses the target model's frozen
//! embedding table, final norm and LM head, and owns only (a) a fusion linear layer
//! that combines the target's hidden state with the next token's embedding and (b) a
//! single trainable transformer decoder layer. Drafting is autoregressive in
//! *feature space*: each step consumes the previous feature and the last committed
//! token, produces the next feature, and projects it through the frozen LM head to
//! obtain draft logits.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tlt_model::layers::{DecoderLayer, DecoderLayerGrads, LayerTrainCache};
use tlt_model::{LayerKvCache, LayerScratch, Mat, TinyLm, TokenId};

/// A bias-free linear layer with explicit forward/backward (used for the fusion
/// projection that reduces `[hidden ; embedding]` down to `hidden`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix (`in_dim x out_dim`).
    pub weight: Mat,
}

impl Linear {
    /// Random initialisation.
    pub fn random(in_dim: usize, out_dim: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Linear {
            weight: Mat::random_uniform(in_dim, out_dim, 1.0 / (in_dim as f32).sqrt(), &mut rng),
        }
    }

    /// Forward pass `x @ w`.
    pub fn forward(&self, x: &Mat) -> Mat {
        x.matmul(&self.weight)
    }

    /// Backward pass: returns `(d_input, d_weight)`.
    pub fn backward(&self, x: &Mat, d_out: &Mat) -> (Mat, Mat) {
        let d_input = d_out.matmul_transposed(&self.weight);
        let d_weight = x.transposed_matmul(d_out);
        (d_input, d_weight)
    }

    /// Number of parameters.
    pub fn num_parameters(&self) -> usize {
        self.weight.len()
    }
}

/// Which target-layer hidden states feed the drafter (EAGLE uses the last layer,
/// EAGLE-3 fuses low/mid/top layers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSource {
    /// Last decoder layer output only (EAGLE / HASS).
    LastLayer,
    /// Bottom, middle and top layer outputs concatenated (EAGLE-3).
    MultiLayer,
}

impl FeatureSource {
    /// Number of hidden-state vectors concatenated per position.
    pub fn width_multiplier(&self) -> usize {
        match self {
            FeatureSource::LastLayer => 1,
            FeatureSource::MultiLayer => 3,
        }
    }

    /// Extracts the feature matrix for this source from per-layer outputs
    /// (`num_layers + 1` matrices, embedding output first).
    pub fn extract(&self, layer_outputs: &[Mat]) -> Mat {
        assert!(
            layer_outputs.len() >= 2,
            "need at least one decoder layer output"
        );
        match self {
            FeatureSource::LastLayer => layer_outputs[layer_outputs.len() - 1].clone(),
            FeatureSource::MultiLayer => {
                let n = layer_outputs.len();
                let low = &layer_outputs[1];
                let mid = &layer_outputs[n / 2];
                let top = &layer_outputs[n - 1];
                Mat::hconcat(&[low, mid, top])
            }
        }
    }
}

/// The draft model: frozen ties to the target plus trainable fusion + decoder layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DraftModel {
    /// Which target hidden states are consumed.
    pub feature_source: FeatureSource,
    /// Fusion projection from `[features ; embedding]` to the drafter width.
    pub fusion: Linear,
    /// The single trainable decoder layer.
    pub layer: DecoderLayer,
    /// Version counter, bumped on every weight update (used to detect staleness).
    pub version: u64,
}

/// Recorded intermediates for one drafter training forward pass.
#[derive(Debug)]
pub struct DraftTrainCache {
    fusion_input: Mat,
    fused: Mat,
    layer_cache: LayerTrainCache,
    head_norm_cache: tlt_model::ops::RmsNormCache,
    /// Drafter output features (input to the frozen norm + head).
    pub features: Mat,
    /// Logits under the frozen target head.
    pub logits: Mat,
}

/// Gradients of the drafter's trainable parameters.
#[derive(Debug, Clone)]
pub struct DraftGrads {
    /// Gradient of the fusion weight.
    pub fusion: Mat,
    /// Gradients of the decoder layer.
    pub layer: DecoderLayerGrads,
}

impl DraftGrads {
    /// Global L2 norm of all gradients.
    pub fn global_norm(&self) -> f32 {
        let fusion_sq: f32 = self.fusion.as_slice().iter().map(|v| v * v).sum();
        (fusion_sq + self.layer.global_norm().powi(2)).sqrt()
    }
}

/// Incremental drafting state (feature-space KV cache plus last feature).
#[derive(Debug, Clone)]
pub struct DraftState {
    kv: LayerKvCache,
    last_feature: Vec<f32>,
    /// KV entries `0..committed` were primed from committed target features and
    /// stay valid across speculative rounds; entries beyond it come from
    /// [`DraftModel::draft_step`] calls and are rolled back by
    /// [`DraftModel::resume_draft`].
    committed: usize,
}

/// Reusable scratch buffers for incremental drafting.
///
/// Holds the fusion input, fused activations, drafter feature, and projection
/// temporaries plus a [`LayerScratch`] for the drafter's decoder layer. Create one
/// per generation loop and pass it to [`DraftModel::begin_draft_with`] /
/// [`DraftModel::draft_step_into`]; steady-state draft steps then perform no heap
/// allocation.
#[derive(Debug, Clone)]
pub struct DraftScratch {
    input: Mat,
    fused: Mat,
    feature: Mat,
    normed: Mat,
    logits: Mat,
    layer: LayerScratch,
}

impl DraftScratch {
    /// Creates scratch for drafting against `target` with the given feature source.
    pub fn new(target: &TinyLm, feature_source: FeatureSource) -> Self {
        let hidden = target.config.hidden;
        let in_dim = hidden * feature_source.width_multiplier() + hidden;
        DraftScratch {
            input: Mat::zeros(0, in_dim),
            fused: Mat::zeros(0, hidden),
            feature: Mat::zeros(0, hidden),
            normed: Mat::zeros(0, hidden),
            logits: Mat::zeros(0, target.config.vocab_size),
            layer: LayerScratch::new(
                hidden,
                target.config.ffn_hidden,
                target.config.max_seq_len * target.config.num_heads,
            ),
        }
    }
}

impl DraftModel {
    /// Creates a drafter compatible with `target`, using the given feature source.
    pub fn new(target: &TinyLm, feature_source: FeatureSource, seed: u64) -> Self {
        let hidden = target.config.hidden;
        let in_dim = hidden * feature_source.width_multiplier() + hidden;
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(1));
        DraftModel {
            feature_source,
            fusion: Linear::random(in_dim, hidden, seed),
            layer: DecoderLayer::random(target.config.layer_config(), &mut rng),
            version: 0,
        }
    }

    /// Number of trainable parameters (fusion + decoder layer).
    pub fn num_parameters(&self) -> usize {
        self.fusion.num_parameters() + self.layer.num_parameters()
    }

    /// Builds the fusion input rows for positions `0..T` of a sequence: target
    /// features at position `t` concatenated with the embedding of token `t+1`.
    ///
    /// `features` has one row per position `0..T`, `tokens` are the full sequence
    /// tokens (length `T+1` at least); row `t` of the result corresponds to
    /// predicting the token at position `t+2`.
    pub fn build_fusion_input(&self, target: &TinyLm, features: &Mat, tokens: &[TokenId]) -> Mat {
        assert!(
            tokens.len() > features.rows(),
            "need the token following every feature position"
        );
        let hidden = target.config.hidden;
        let fwidth = hidden * self.feature_source.width_multiplier();
        assert_eq!(features.cols(), fwidth, "feature width mismatch");
        let mut out = Mat::zeros(features.rows(), fwidth + hidden);
        for t in 0..features.rows() {
            let row = out.row_mut(t);
            row[..fwidth].copy_from_slice(features.row(t));
            let next_token = tokens[t + 1] as usize;
            row[fwidth..].copy_from_slice(target.embedding.row(next_token));
        }
        out
    }

    /// Initialises incremental drafting state from the target's features over the
    /// committed prefix. `features` holds one row per prefix position (in the
    /// drafter's feature source width) and `tokens` the prefix tokens (same length).
    pub fn begin_draft(&self, target: &TinyLm, features: &Mat, tokens: &[TokenId]) -> DraftState {
        let mut scratch = DraftScratch::new(target, self.feature_source);
        self.begin_draft_with(target, features, tokens, &mut scratch)
    }

    /// [`DraftModel::begin_draft`] with caller-provided scratch buffers: the prefix
    /// fusion inputs, fused activations, and layer temporaries are all built in
    /// `scratch`, so per-round allocations are limited to the drafting state itself.
    pub fn begin_draft_with(
        &self,
        target: &TinyLm,
        features: &Mat,
        tokens: &[TokenId],
        scratch: &mut DraftScratch,
    ) -> DraftState {
        assert_eq!(
            features.rows(),
            tokens.len(),
            "feature/token length mismatch"
        );
        assert!(!tokens.is_empty(), "cannot draft from an empty prefix");
        let hidden = target.config.hidden;
        let fwidth = hidden * self.feature_source.width_multiplier();
        assert_eq!(features.cols(), fwidth, "feature width mismatch");
        let mut kv = LayerKvCache::new(hidden);
        kv.reserve(target.config.max_seq_len);
        let mut state = DraftState {
            kv,
            last_feature: features.row(features.rows() - 1).to_vec(),
            committed: 0,
        };
        self.prime_kv_range(target, features, tokens, &mut state, scratch, 0);
        state
    }

    /// Rolls existing drafting state forward to a longer committed prefix:
    /// speculative KV entries from the previous round's draft steps are rolled
    /// back, entries already primed from committed features are kept (keys/values
    /// are per-position functions of their fusion input, so they are bit-identical
    /// to a full re-prime), and only the newly committed positions are appended.
    ///
    /// Equivalent to — but much cheaper than — calling [`DraftModel::begin_draft`]
    /// from scratch each speculative round.
    pub fn resume_draft(
        &self,
        target: &TinyLm,
        features: &Mat,
        tokens: &[TokenId],
        state: &mut DraftState,
        scratch: &mut DraftScratch,
    ) {
        assert_eq!(
            features.rows(),
            tokens.len(),
            "feature/token length mismatch"
        );
        assert!(!tokens.is_empty(), "cannot draft from an empty prefix");
        assert!(
            state.committed < features.rows(),
            "drafting state is ahead of the committed prefix"
        );
        state.kv.truncate(state.committed);
        let from = state.committed;
        self.prime_kv_range(target, features, tokens, state, scratch, from);
        state.last_feature.clear();
        state
            .last_feature
            .extend_from_slice(features.row(features.rows() - 1));
    }

    /// Appends drafter KV entries for committed positions `from..rows-1` (each
    /// pairing `feature[t]` with `token[t+1]`); the layer output for primed
    /// positions is never consumed, so only keys/values are computed
    /// ([`DecoderLayer::append_kv`]).
    fn prime_kv_range(
        &self,
        target: &TinyLm,
        features: &Mat,
        tokens: &[TokenId],
        state: &mut DraftState,
        scratch: &mut DraftScratch,
        from: usize,
    ) {
        let hidden = target.config.hidden;
        let fwidth = hidden * self.feature_source.width_multiplier();
        // `resume_draft` guarantees from <= rows - 1.
        let until = features.rows() - 1;
        if until == from {
            state.committed = until;
            return;
        }
        let count = until - from;
        scratch.input.set_rows(count, fwidth + hidden);
        for t in 0..count {
            let row = scratch.input.row_mut(t);
            row[..fwidth].copy_from_slice(features.row(from + t));
            row[fwidth..].copy_from_slice(target.embedding.row(tokens[from + t + 1] as usize));
        }
        scratch.fused.set_rows(count, hidden);
        scratch
            .input
            .matmul_into(&self.fusion.weight, &mut scratch.fused);
        self.layer
            .append_kv(&scratch.fused, &mut state.kv, 0, &mut scratch.layer);
        state.committed = until;
    }

    /// Performs one incremental draft step: consumes the last committed/drafted token
    /// and returns the draft logits for the *next* token (updating internal state).
    pub fn draft_step(
        &self,
        target: &TinyLm,
        state: &mut DraftState,
        last_token: TokenId,
    ) -> Vec<f32> {
        let mut scratch = DraftScratch::new(target, self.feature_source);
        self.draft_step_into(target, state, last_token, &mut scratch)
            .to_vec()
    }

    /// Allocation-free draft step: identical numerics to [`DraftModel::draft_step`],
    /// returning the logits row held in `scratch`.
    pub fn draft_step_into<'s>(
        &self,
        target: &TinyLm,
        state: &mut DraftState,
        last_token: TokenId,
        scratch: &'s mut DraftScratch,
    ) -> &'s [f32] {
        let hidden = target.config.hidden;
        let fwidth = hidden * self.feature_source.width_multiplier();
        scratch.input.set_rows(1, fwidth + hidden);
        {
            let row = scratch.input.row_mut(0);
            row[..fwidth].copy_from_slice(&state.last_feature);
            row[fwidth..].copy_from_slice(target.embedding.row(last_token as usize));
        }
        scratch.fused.set_rows(1, hidden);
        scratch
            .input
            .matmul_into(&self.fusion.weight, &mut scratch.fused);
        self.layer.forward_cached_into(
            &scratch.fused,
            &mut state.kv,
            0,
            &mut scratch.layer,
            &mut scratch.feature,
        );
        // The drafter's own feature becomes the context for the next draft step. For
        // the multi-layer source the drafter feature stands in for all three slots.
        for chunk in state.last_feature.chunks_mut(hidden) {
            chunk.copy_from_slice(scratch.feature.row(0));
        }
        scratch.normed.set_rows(1, hidden);
        tlt_model::ops::rmsnorm_into(&scratch.feature, &target.final_norm, &mut scratch.normed);
        scratch.logits.set_rows(1, target.config.vocab_size);
        scratch
            .normed
            .matmul_into(&target.lm_head, &mut scratch.logits);
        scratch.logits.row(0)
    }

    /// Full-sequence training forward pass over fusion inputs built with
    /// [`DraftModel::build_fusion_input`]. Returns drafter features and logits with
    /// the caches needed for [`DraftModel::backward`].
    pub fn forward_train(&self, target: &TinyLm, fusion_input: &Mat) -> DraftTrainCache {
        let fused = self.fusion.forward(fusion_input);
        let (features, layer_cache) = self.layer.forward_train(&fused);
        // Same computation as `target.project_hidden`, but the norm cache is kept
        // so the backward pass does not have to re-derive it.
        let (normed, head_norm_cache) =
            tlt_model::ops::rmsnorm_forward(&features, &target.final_norm);
        let logits = normed.matmul(&target.lm_head);
        DraftTrainCache {
            fusion_input: fusion_input.clone(),
            fused,
            layer_cache,
            head_norm_cache,
            features,
            logits,
        }
    }

    /// Backward pass given the gradient with respect to the drafter output features
    /// (already combining CE-through-head and feature-alignment terms).
    pub fn backward(&self, cache: &DraftTrainCache, d_features: &Mat) -> DraftGrads {
        let (d_fused, layer_grads) = self.layer.backward(&cache.layer_cache, d_features);
        let (_d_input, d_fusion) = self.fusion.backward(&cache.fusion_input, &d_fused);
        // `_d_input` would flow into the frozen target features/embeddings; they are
        // not trained, so it is discarded (matching the paper: only the single
        // decoder layer and fusion projection are updated).
        let _ = &cache.fused;
        DraftGrads {
            fusion: d_fusion,
            layer: layer_grads,
        }
    }

    /// Propagates the gradient of a loss on the drafter *logits* back to the drafter
    /// *features*, through the target's frozen final norm and LM head.
    pub fn logits_grad_to_features(
        &self,
        target: &TinyLm,
        cache: &DraftTrainCache,
        d_logits: &Mat,
    ) -> Mat {
        // logits = rmsnorm(features) @ lm_head  (all frozen); the norm cache was
        // recorded by `forward_train`.
        let d_normed = d_logits.matmul_transposed(&target.lm_head);
        let (d_features, _d_gain) =
            tlt_model::ops::rmsnorm_backward(&cache.head_norm_cache, &target.final_norm, &d_normed);
        d_features
    }

    /// Applies an SGD update (used in tests; the trainer uses Adam).
    pub fn apply_sgd(&mut self, grads: &DraftGrads, lr: f32) {
        self.fusion.weight.add_scaled(&grads.fusion, -lr);
        self.layer.apply_sgd(&grads.layer, lr);
        self.version += 1;
    }

    /// Marks the drafter as updated (bumps the version counter).
    pub fn bump_version(&mut self) {
        self.version += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_model::ModelConfig;

    fn target() -> TinyLm {
        TinyLm::new(ModelConfig::micro(), 7)
    }

    #[test]
    fn linear_backward_matches_finite_difference() {
        let lin = Linear::random(4, 3, 0);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Mat::random_uniform(2, 4, 1.0, &mut rng);
        let d_out = Mat::random_uniform(2, 3, 1.0, &mut rng);
        let (_, d_w) = lin.backward(&x, &d_out);
        let loss = |l: &Linear| {
            let y = l.forward(&x);
            y.as_slice()
                .iter()
                .zip(d_out.as_slice())
                .map(|(a, b)| a * b)
                .sum::<f32>()
        };
        let eps = 1e-3;
        for idx in 0..lin.weight.len() {
            let mut plus = lin.clone();
            plus.weight.as_mut_slice()[idx] += eps;
            let mut minus = lin.clone();
            minus.weight.as_mut_slice()[idx] -= eps;
            let numeric = (loss(&plus) - loss(&minus)) / (2.0 * eps);
            assert!((numeric - d_w.as_slice()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn drafter_is_a_small_fraction_of_target() {
        let t = target();
        let d = DraftModel::new(&t, FeatureSource::LastLayer, 0);
        // The drafter (one layer + fusion) must be well under half of the target.
        assert!(d.num_parameters() * 2 < t.num_parameters());
    }

    #[test]
    fn feature_source_extraction_shapes() {
        let t = target();
        let tokens: Vec<TokenId> = vec![1, 2, 3, 4];
        let (out, _) = t.prefill(&tokens, true);
        let layer_outputs = out.layer_outputs.unwrap();
        let last = FeatureSource::LastLayer.extract(&layer_outputs);
        assert_eq!(last.shape(), (4, t.config.hidden));
        let multi = FeatureSource::MultiLayer.extract(&layer_outputs);
        assert_eq!(multi.shape(), (4, 3 * t.config.hidden));
    }

    #[test]
    fn draft_step_produces_vocab_sized_logits() {
        let t = target();
        let d = DraftModel::new(&t, FeatureSource::LastLayer, 0);
        let tokens: Vec<TokenId> = vec![1, 2, 3, 4, 5];
        let (out, _) = t.prefill(&tokens, true);
        let features = FeatureSource::LastLayer.extract(&out.layer_outputs.unwrap());
        let mut state = d.begin_draft(&t, &features, &tokens);
        let logits = d.draft_step(&t, &mut state, *tokens.last().unwrap());
        assert_eq!(logits.len(), t.config.vocab_size);
        assert!(logits.iter().all(|v| v.is_finite()));
        // A second step keeps working (autoregressive in feature space).
        let logits2 = d.draft_step(&t, &mut state, 3);
        assert_eq!(logits2.len(), t.config.vocab_size);
    }

    #[test]
    fn multi_layer_drafter_also_drafts() {
        let t = target();
        let d = DraftModel::new(&t, FeatureSource::MultiLayer, 0);
        let tokens: Vec<TokenId> = vec![2, 4, 6];
        let (out, _) = t.prefill(&tokens, true);
        let features = FeatureSource::MultiLayer.extract(&out.layer_outputs.unwrap());
        let mut state = d.begin_draft(&t, &features, &tokens);
        let logits = d.draft_step(&t, &mut state, 6);
        assert_eq!(logits.len(), t.config.vocab_size);
    }

    #[test]
    fn training_gradient_reduces_cross_entropy() {
        let t = target();
        let mut d = DraftModel::new(&t, FeatureSource::LastLayer, 0);
        // Build a training sample from a real rollout prefix.
        let tokens: Vec<TokenId> = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let (out, _) = t.prefill(&tokens, true);
        let features = FeatureSource::LastLayer.extract(&out.layer_outputs.unwrap());
        // Positions 0..T-2 predict tokens 2..T.
        let usable = features.slice_rows(0, tokens.len() - 2);
        let fusion_input = d.build_fusion_input(&t, &usable, &tokens);
        let targets: Vec<usize> = tokens[2..].iter().map(|&x| x as usize).collect();

        let loss_of = |d: &DraftModel| {
            let cache = d.forward_train(&t, &fusion_input);
            tlt_model::ops::cross_entropy(&cache.logits, &targets).0
        };
        let before = loss_of(&d);
        for _ in 0..30 {
            let cache = d.forward_train(&t, &fusion_input);
            let (_, d_logits) = tlt_model::ops::cross_entropy(&cache.logits, &targets);
            let d_features = d.logits_grad_to_features(&t, &cache, &d_logits);
            let grads = d.backward(&cache, &d_features);
            d.apply_sgd(&grads, 0.1);
        }
        let after = loss_of(&d);
        assert!(
            after < before,
            "drafter CE did not decrease: {before} -> {after}"
        );
        assert!(d.version >= 30);
    }

    #[test]
    fn version_bumps_on_update() {
        let t = target();
        let mut d = DraftModel::new(&t, FeatureSource::LastLayer, 0);
        assert_eq!(d.version, 0);
        d.bump_version();
        assert_eq!(d.version, 1);
    }

    #[test]
    #[should_panic(expected = "cannot draft from an empty prefix")]
    fn empty_prefix_rejected() {
        let t = target();
        let d = DraftModel::new(&t, FeatureSource::LastLayer, 0);
        let _ = d.begin_draft(&t, &Mat::zeros(0, t.config.hidden), &[]);
    }
}
