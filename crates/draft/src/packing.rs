//! Sequence packing for drafter spot-training (§4.2 "Sequence Packing").
//!
//! Training data consists of variable-length rollout responses. Padding every
//! sequence in a batch to the batch maximum wastes compute on padding tokens; the
//! spot trainer instead packs multiple sequences into fixed-size token budgets
//! (first-fit-decreasing bin packing) and relies on per-sequence attention masks to
//! keep them independent — in this substrate, packed sequences are simply processed
//! back to back, which is equivalent for the single-layer drafter.

use serde::{Deserialize, Serialize};

/// A packing plan: each inner vector lists the indices of the sequences that share
/// one packed buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PackingPlan {
    /// Sequence indices per packed buffer.
    pub packs: Vec<Vec<usize>>,
    /// Token budget per packed buffer.
    pub max_tokens: usize,
}

impl PackingPlan {
    /// Number of packed buffers.
    pub fn num_packs(&self) -> usize {
        self.packs.len()
    }
}

/// Efficiency comparison between padded batching and sequence packing, matching the
/// quantities behind Figure 17(b).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PackingStats {
    /// Total real tokens across all sequences.
    pub real_tokens: usize,
    /// Tokens processed under padded batching (batch_size x max_len per batch).
    pub padded_tokens: usize,
    /// Tokens processed under packing (packs x max_tokens, capped by real usage).
    pub packed_tokens: usize,
    /// Compute utilisation of padded batching (`real / padded`).
    pub padded_efficiency: f64,
    /// Compute utilisation of packing (`real / packed`).
    pub packed_efficiency: f64,
}

impl PackingStats {
    /// Throughput improvement of packing over padded batching (ratio of effective
    /// samples processed per unit compute).
    pub fn speedup(&self) -> f64 {
        if self.packed_efficiency <= 0.0 || self.padded_efficiency <= 0.0 {
            1.0
        } else {
            self.packed_efficiency / self.padded_efficiency
        }
    }
}

/// Packs sequence lengths into buffers of at most `max_tokens` tokens using
/// first-fit-decreasing. Sequences longer than `max_tokens` get a dedicated pack
/// (they are truncated by the trainer, not here).
///
/// # Panics
///
/// Panics if `max_tokens` is zero.
pub fn pack_sequences(lengths: &[usize], max_tokens: usize) -> PackingPlan {
    assert!(max_tokens > 0, "max_tokens must be positive");
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(lengths[i]));
    let mut packs: Vec<(usize, Vec<usize>)> = Vec::new(); // (used_tokens, members)
    for idx in order {
        let len = lengths[idx].min(max_tokens);
        match packs.iter_mut().find(|(used, _)| used + len <= max_tokens) {
            Some((used, members)) => {
                *used += len;
                members.push(idx);
            }
            None => packs.push((len, vec![idx])),
        }
    }
    PackingPlan {
        packs: packs.into_iter().map(|(_, members)| members).collect(),
        max_tokens,
    }
}

/// Compares padded batching (fixed `batch_size`, padding to each batch's maximum)
/// against packing with a `max_tokens` budget.
pub fn packing_stats(lengths: &[usize], batch_size: usize, max_tokens: usize) -> PackingStats {
    assert!(batch_size > 0, "batch size must be positive");
    let real_tokens: usize = lengths.iter().sum();

    // Padded batching: sequences are batched in arrival order.
    let mut padded_tokens = 0usize;
    for chunk in lengths.chunks(batch_size) {
        let max_len = chunk.iter().copied().max().unwrap_or(0);
        padded_tokens += max_len * chunk.len();
    }

    // Packing: every pack costs its actual content (mask handles separation).
    let plan = pack_sequences(lengths, max_tokens);
    let packed_tokens: usize = plan
        .packs
        .iter()
        .map(|members| {
            members
                .iter()
                .map(|&i| lengths[i].min(max_tokens))
                .sum::<usize>()
        })
        .sum();

    PackingStats {
        real_tokens,
        padded_tokens,
        packed_tokens,
        padded_efficiency: if padded_tokens == 0 {
            1.0
        } else {
            real_tokens as f64 / padded_tokens as f64
        },
        packed_efficiency: if packed_tokens == 0 {
            1.0
        } else {
            real_tokens as f64 / packed_tokens as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packs_respect_token_budget() {
        let lengths = vec![100, 300, 250, 50, 400, 120, 80];
        let plan = pack_sequences(&lengths, 512);
        for pack in &plan.packs {
            let total: usize = pack.iter().map(|&i| lengths[i]).sum();
            assert!(total <= 512, "pack exceeds budget: {total}");
        }
        // Every sequence appears exactly once.
        let mut all: Vec<usize> = plan.packs.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..lengths.len()).collect::<Vec<_>>());
    }

    #[test]
    fn oversized_sequences_get_their_own_pack() {
        let lengths = vec![10_000, 20];
        let plan = pack_sequences(&lengths, 512);
        assert_eq!(plan.num_packs(), 1.max(plan.num_packs()));
        assert!(plan.packs.iter().any(|p| p.contains(&0)));
    }

    #[test]
    fn packing_beats_padding_on_long_tail_lengths() {
        // A long-tail batch: one very long sequence forces heavy padding.
        let lengths = vec![4000, 120, 80, 60, 200, 90, 150, 70];
        let stats = packing_stats(&lengths, 8, 4096);
        assert!(stats.padded_efficiency < 0.3);
        assert!(stats.packed_efficiency > 0.9);
        assert!(
            stats.speedup() > 2.0,
            "expected >2x speedup, got {}",
            stats.speedup()
        );
    }

    #[test]
    fn uniform_lengths_show_little_benefit() {
        let lengths = vec![128; 32];
        let stats = packing_stats(&lengths, 8, 1024);
        assert!((stats.speedup() - 1.0).abs() < 0.2);
    }

    #[test]
    fn empty_input_is_handled() {
        let stats = packing_stats(&[], 8, 512);
        assert_eq!(stats.real_tokens, 0);
        assert_eq!(stats.speedup(), 1.0);
        assert_eq!(pack_sequences(&[], 512).num_packs(), 0);
    }

    #[test]
    #[should_panic(expected = "max_tokens must be positive")]
    fn zero_budget_panics() {
        let _ = pack_sequences(&[1, 2], 0);
    }
}
