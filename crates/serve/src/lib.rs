//! # tlt-serve
//!
//! Online serving subsystem for the TLT reproduction: a discrete-event, open-loop
//! counterpart to `tlt-rollout`'s closed-loop rollout engine.
//!
//! Where the rollout engine decodes one fixed RL-step batch to completion, this
//! crate models **production serving**: requests arrive over time (Poisson over
//! constant / diurnal / bursty rate curves, from [`tlt_workload::arrival`]), a
//! multi-replica frontend routes them through a pluggable load balancer
//! ([`balancer`]), and each replica runs a continuous-batching scheduler
//! ([`replica`]) with an admission queue, KV-capacity-based admission, packed
//! prefill / decode interleaving and optional preemption. Decode steps are costed
//! by [`tlt_gpusim::LlmCostModel`], and the per-step speculative-decoding decision
//! is delegated to the existing [`tlt_rollout::AdaptiveSdManager`] with the elastic
//! threshold driven by the live load (running batch + queue depth) — the paper's
//! elastic-SD insight turned into a load-dependent serving policy. SLO metrics
//! (TTFT / TPOT / E2E percentiles, goodput, utilisation) live in [`metrics`].
//!
//! Everything is a pure function of seeds: identical configs and arrival streams
//! reproduce bit-identical reports.
//!
//! ```
//! use tlt_gpusim::{GpuType, LlmCostModel};
//! use tlt_model::ModelSpec;
//! use tlt_serve::{simulate_serving, ServeConfig};
//! use tlt_workload::{generate_arrivals, ArrivalConfig};
//!
//! let cost = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1);
//! let arrivals = generate_arrivals(&ArrivalConfig::constant(2.0, 10.0, 7));
//! let report = simulate_serving(&ServeConfig::new(cost, 2), &arrivals);
//! assert_eq!(report.completed.len(), arrivals.len());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod balancer;
pub mod cluster;
pub mod config;
pub mod events;
pub mod frontend;
pub mod metrics;
pub mod replica;
pub mod request;
pub mod transfer;

pub use balancer::{BalancerPolicy, LoadBalancer, ReplicaLoad};
pub use cluster::{simulate_disagg, AutoscaleConfig, ClusterReport, ClusterSim, DisaggConfig};
pub use config::{KvAccounting, ServeConfig};
pub use events::{DriveOutcome, EventCore, EventKey, EventQueue};
pub use frontend::{simulate_serving, simulate_serving_traced, ServeSim};
pub use metrics::{percentile_f64, LatencySummary, ReplicaStats, ServeReport, SloSpec};
pub use replica::{FailoverRequest, MigratedEntry, Replica};
pub use request::{CompletedRequest, ServeRequest};
pub use transfer::{TransferLink, TransferLinkConfig};
