//! # tlt-bench
//!
//! Benchmark harness for the TLT reproduction: shared experiment setups, a small
//! text-table reporter with JSON export, and the `experiments` binary that
//! regenerates every table and figure of the paper's evaluation section plus the
//! online-serving study (run
//! `cargo run -p tlt-bench --release --bin experiments -- all`;
//! add `--json <path>` to also write the results as machine-readable JSON).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod json;
pub mod perf;
pub mod report;
pub mod setups;

pub use json::JsonValue;
pub use perf::{perf_report_json, run_perf, run_perf_workloads, PerfPoint};
pub use report::{Report, Table};
