//! Offline shim for the subset of `crossbeam` used by this workspace:
//! unbounded MPMC channels with the `crossbeam::channel` API surface
//! (`unbounded`, cloneable `Sender`/`Receiver`, `try_recv`/`recv`,
//! disconnect detection). Built on `std` mutex + condvar; no `unsafe`.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain connected.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    /// Creates an unbounded channel, returning its two halves.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; fails only if every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            queue.push_back(value);
            drop(queue);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe the hangup.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a value without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            match queue.pop_front() {
                Some(value) => Ok(value),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocks until a value arrives or every sender disconnects.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn values_round_trip_in_order() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert!(rx.recv().is_err());
    }

    #[test]
    fn senders_are_cloneable_across_threads() {
        let (tx, rx) = unbounded();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tx = tx.clone();
                std::thread::spawn(move || tx.send(i).unwrap())
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let mut got: Vec<i32> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
