//! Asserts the workspace decode path performs **zero heap allocations** in steady
//! state, via a counting global allocator.
//!
//! The first decode step after a prefill may still grow workspace buffers (they
//! are sized lazily); every subsequent step must allocate nothing: embeddings,
//! per-layer temporaries, attention scores, logits, KV appends, and sampling all
//! run out of preallocated memory.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use tlt_model::{
    probs_from_logits_into, sample_from_probs, DecodeWorkspace, ModelConfig, SamplingParams, TinyLm,
};

thread_local! {
    /// Per-thread allocation counter: the libtest harness runs tests (and its own
    /// bookkeeping) on several threads at once, so a process-global counter would
    /// pick up unrelated allocations and flake. Const-initialised so reading it
    /// inside the allocator never allocates.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump_thread_count() {
    // `try_with` tolerates TLS teardown; a missed count there is harmless (the
    // measuring sections only run on live test threads).
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

struct CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump_thread_count();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump_thread_count();
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Allocations performed by the *current* thread so far.
fn allocation_count() -> u64 {
    THREAD_ALLOCATIONS.with(Cell::get)
}

#[test]
fn steady_state_decode_steps_allocate_nothing() {
    let model = TinyLm::new(ModelConfig::tiny(), 42);
    let mut cache = model.new_cache();
    let mut ws = DecodeWorkspace::new(&model.config);
    let prompt = [3u32, 1, 4, 1, 5];
    model.forward_into(&prompt, &mut cache, &mut ws);

    // Warm-up: the first single-token step may still size buffers.
    let _ = model.decode_step(9, &mut cache, &mut ws);

    let before = allocation_count();
    for i in 0..32u32 {
        let logits = model.decode_step(i % 90, &mut cache, &mut ws);
        assert_eq!(logits.rows(), 1);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "steady-state decode steps must not allocate"
    );
}

#[test]
fn steady_state_sampling_loop_allocates_nothing() {
    // The full vanilla-generation inner loop — decode step, probability
    // conversion into a reused buffer, and sampling — is allocation-free too.
    let model = TinyLm::new(ModelConfig::tiny(), 43);
    let mut cache = model.new_cache();
    let mut ws = DecodeWorkspace::new(&model.config);
    let mut probs = Vec::with_capacity(model.config.vocab_size);
    let mut rng = StdRng::seed_from_u64(7);
    let params = SamplingParams::rollout();
    model.forward_into(&[1, 2, 3], &mut cache, &mut ws);
    let mut next = 5u32;
    // Warm-up step sizes the single-row buffers.
    model.forward_into(&[next], &mut cache, &mut ws);

    let before = allocation_count();
    for _ in 0..32 {
        probs_from_logits_into(ws.logits().row(0), params, &mut probs);
        next = sample_from_probs(&probs, &mut rng) as u32;
        model.forward_into(&[next], &mut cache, &mut ws);
    }
    let after = allocation_count();
    assert_eq!(
        after - before,
        0,
        "the decode-sample loop must not allocate in steady state"
    );
}

#[test]
fn decode_steps_with_model_hooks_enabled_allocate_nothing() {
    // The tlt-obs decode-step hooks are relaxed atomic bumps: enabling them
    // must not introduce a single allocation into the steady-state loop.
    let model = TinyLm::new(ModelConfig::tiny(), 44);
    let mut cache = model.new_cache();
    let mut ws = DecodeWorkspace::new(&model.config);
    model.forward_into(&[3, 1, 4], &mut cache, &mut ws);
    let _ = model.decode_step(9, &mut cache, &mut ws);

    tlt::obs::hooks::reset();
    tlt::obs::hooks::enable();
    let before = allocation_count();
    for i in 0..32u32 {
        let logits = model.decode_step(i % 90, &mut cache, &mut ws);
        assert_eq!(logits.rows(), 1);
    }
    let after = allocation_count();
    tlt::obs::hooks::disable();
    assert_eq!(
        after - before,
        0,
        "decode steps with obs hooks enabled must not allocate"
    );
    assert!(
        tlt::obs::hooks::snapshot().decode_steps >= 32,
        "hooks were enabled but counted nothing"
    );
}

#[test]
fn recording_into_a_warm_flight_recorder_allocates_nothing() {
    use tlt::obs::{record, EventKind, FlightRecorder, ObsEvent, Track, NO_REQ};

    // With no recorder installed on this thread, record() is a single relaxed
    // atomic load and an early return — trivially allocation-free.
    let disabled_event = ObsEvent::instant(0.0, Track::Frontend, EventKind::Decode, NO_REQ);
    let before = allocation_count();
    for _ in 0..64 {
        record(disabled_event);
    }
    let after = allocation_count();
    assert_eq!(after - before, 0, "disabled record() must not allocate");

    // Installed path: each track's ring is preallocated the first time the
    // track is seen, so after one warm-up event per track every subsequent
    // record() — including wraparound past capacity — is allocation-free.
    tlt::obs::install(FlightRecorder::new(16));
    for track in [Track::Frontend, Track::Replica(0), Track::Coordinator] {
        record(ObsEvent::instant(0.0, track, EventKind::Decode, NO_REQ));
    }
    let before = allocation_count();
    for i in 0..128u64 {
        let track = match i % 3 {
            0 => Track::Frontend,
            1 => Track::Replica(0),
            _ => Track::Coordinator,
        };
        record(ObsEvent::instant(i as f64, track, EventKind::Decode, i).with_args(1.0, 2.0));
    }
    let after = allocation_count();
    let recorder = tlt::obs::uninstall().expect("recorder installed above");
    assert_eq!(
        after - before,
        0,
        "record() into warm rings must not allocate, even across wraparound"
    );
    assert_eq!(recorder.recorded(), 3 + 128);
}

/// Sanity check that the counting allocator actually observes allocations (so a
/// zero count above means "no allocations", not "broken instrumentation").
#[test]
fn counting_allocator_observes_allocations() {
    let before = allocation_count();
    let v: Vec<u8> = Vec::with_capacity(4096);
    std::hint::black_box(&v);
    let after = allocation_count();
    assert!(after > before, "allocator instrumentation must count");
    drop(v);
}

#[test]
fn steady_state_streamed_trace_decode_allocates_nothing() {
    // The chunked TLTR reader decodes through a fixed buffer and a fixed
    // prefix ring: after open() (which allocates the buffer and name once),
    // pulling every record of a prefix-heavy trace performs zero allocations —
    // the constant-memory guarantee behind million-request streamed replay.
    use std::io::Cursor;
    use tlt_trace::{Trace, TraceReader};
    use tlt_workload::{generate_arrivals, ArrivalConfig};

    let arrivals = generate_arrivals(&ArrivalConfig::constant(20.0, 20.0, 11).with_prefix(0.6, 96));
    let trace = Trace::from_arrivals("alloc-free", 1_000, &arrivals);
    let bytes = trace.to_bytes();
    let total = arrivals.len();

    // A small capacity forces many shift-and-refill cycles through the
    // measured section; refills reuse the fixed buffer.
    let mut reader = TraceReader::open_with_capacity(Cursor::new(&bytes[..]), 64).expect("opens");

    let before = allocation_count();
    let mut decoded = 0usize;
    while let Some(a) = reader.next_arrival().expect("clean stream") {
        std::hint::black_box(&a);
        decoded += 1;
    }
    let after = allocation_count();
    assert_eq!(decoded, total);
    assert_eq!(
        after - before,
        0,
        "streamed trace decode must not allocate after open()"
    );
}
