//! Offline shim for the subset of `proptest` used by this workspace: the
//! `proptest!` macro over named strategies (`x in strategy`), integer-range
//! and `collection::vec` strategies, `prop_assert!`/`prop_assert_eq!` and
//! `ProptestConfig`.
//!
//! Cases are generated from a fixed deterministic seed (no persistence files,
//! no shrinking): a failing case panics through the normal test harness with
//! the generated inputs available via `RUST_BACKTRACE` context.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;

/// Runner configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
    /// Accepted for API compatibility; the shim never shrinks.
    pub max_shrink_iters: u32,
    /// Seed stem for the deterministic case stream.
    pub rng_seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
            rng_seed: 0x7071_7e57,
        }
    }
}

/// A source of generated values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value for the current case.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        use rand::Rng;
        rng.gen_range(self.clone())
    }
}

/// A strategy producing a fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and length in a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors whose length is drawn from `len` and whose elements
    /// are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test module needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Just, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property (panics on failure, like a failed test).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr;) => {};
    (
        config = $config:expr;
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut __proptest_rng = <$crate::__rand::rngs::StdRng as $crate::__rand::SeedableRng>::seed_from_u64(
                    config.rng_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(
                    let $arg = $crate::Strategy::generate(&($strategy), &mut __proptest_rng);
                )+
                $body
            }
        }
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
}

#[doc(hidden)]
pub use rand as __rand;

/// Declares property-based tests, mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn ranges_and_vecs_generate_in_bounds(
            x in 3u32..17,
            v in collection::vec(0u64..5, 1..4),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(y in 0usize..10) {
            prop_assert_ne!(y, 10);
            prop_assert_eq!(y.min(9), y);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use crate::Strategy;
        use rand::SeedableRng;
        let strat = collection::vec(0u32..100, 2..6);
        let mut a = rand::rngs::StdRng::seed_from_u64(5);
        let mut b = rand::rngs::StdRng::seed_from_u64(5);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }
}
