//! Round-trip suite for `tlt-trace`: recording a run, writing the trace,
//! reading it back and replaying it must reproduce the recorded run's
//! per-request completion stream **bit for bit** — for the monolithic and the
//! disaggregated frontends, over random seeds — and damaged trace files must
//! be rejected with typed errors, never panics or silently-wrong traces.

use proptest::prelude::*;
use tlt::replay_deployment;
use tlt_serve::DisaggConfig;
use tlt_trace::{
    record_disagg, record_serving, replay_disagg, replay_serving, CorpusPreset, Trace, TraceError,
};
use tlt_workload::{generate_arrivals, ArrivalConfig};

fn arrivals_for(seed: u64, rps: f64, horizon_s: f64) -> Vec<tlt_workload::RequestArrival> {
    generate_arrivals(&ArrivalConfig::constant(rps, horizon_s, seed).with_prefix(0.4, 128))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Monolithic frontend: record → encode → decode → replay equals the
    /// recorded run bit for bit, at nanosecond and at millisecond ticks.
    #[test]
    fn monolithic_record_replay_round_trips(seed in 0u64..10_000) {
        // Alternate between nanosecond (lossless) and millisecond ticks.
        let tick = if seed % 2 == 0 { 1u64 } else { 1_000_000 };
        let arrivals = arrivals_for(seed, 6.0, 15.0);
        let config = replay_deployment(2);
        let (recorded, trace) = record_serving("prop", tick, &config, &arrivals);

        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("round trip");
        prop_assert_eq!(&decoded, &trace);

        let replayed = replay_serving(&decoded, &config);
        prop_assert_eq!(&replayed.completed, &recorded.completed);
        prop_assert_eq!(replayed.goodput_rps, recorded.goodput_rps);
        prop_assert_eq!(replayed.slo_attainment, recorded.slo_attainment);
        prop_assert_eq!(replayed.throughput_tokens_per_s, recorded.throughput_tokens_per_s);
    }

    /// Disaggregated frontend: the same round trip holds through the
    /// prefill/decode cluster, including the recorded SD bitstream.
    #[test]
    fn disagg_record_replay_round_trips(seed in 0u64..10_000) {
        let arrivals = arrivals_for(seed, 4.0, 10.0);
        let config = || DisaggConfig::new(replay_deployment(1), 1, 2);
        let (recorded, trace) = record_disagg("prop-disagg", 1_000, config(), &arrivals);

        let decoded = Trace::from_bytes(&trace.to_bytes()).expect("round trip");
        prop_assert_eq!(&decoded, &trace);

        let replayed = replay_disagg(&decoded, config());
        prop_assert_eq!(&replayed.serve.completed, &recorded.serve.completed);
        prop_assert_eq!(replayed.serve.goodput_rps, recorded.serve.goodput_rps);
        prop_assert_eq!(replayed.migrations, recorded.migrations);
    }
}

/// Replaying the *same decoded bytes* twice yields identical reports — the
/// bit-determinism the CI double-run `cmp` gate relies on.
#[test]
fn double_replay_is_bit_identical() {
    let trace = CorpusPreset::Chat.build();
    let a = tlt::run_replay(&trace, 2);
    let b = tlt::run_replay(&trace, 2);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.goodput_rps, b.goodput_rps);
    assert_eq!(a.slo_attainment, b.slo_attainment);
}

/// A recorded trace survives an actual filesystem round trip.
#[test]
fn file_round_trip_preserves_the_trace() {
    let arrivals = arrivals_for(7, 5.0, 10.0);
    let (_, trace) = record_serving("file-rt", 1_000, &replay_deployment(2), &arrivals);
    let path = std::env::temp_dir().join("tlt_trace_file_rt.tltr");
    let path = path.to_str().expect("utf-8 temp path");
    trace.write_file(path).expect("write");
    let read = Trace::read_file(path).expect("read");
    std::fs::remove_file(path).ok();
    assert_eq!(read, trace);
}

/// Damaged traces are rejected with typed errors.
#[test]
fn damaged_traces_are_rejected_with_typed_errors() {
    let bytes = CorpusPreset::BurstyMobile.build().to_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[0] = b'Z';
    assert_eq!(Trace::from_bytes(&bad_magic), Err(TraceError::BadMagic));

    let mut bad_version = bytes.clone();
    bad_version[4] = 200;
    assert_eq!(
        Trace::from_bytes(&bad_version),
        Err(TraceError::UnsupportedVersion(200))
    );

    for cut in [0, 3, 10, bytes.len() / 3, bytes.len() - 1] {
        let err = Trace::from_bytes(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(err, TraceError::Truncated | TraceError::Corrupt { .. }),
            "cut {cut}: {err:?}"
        );
    }

    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x01;
    assert!(matches!(
        Trace::from_bytes(&corrupt),
        Err(TraceError::Corrupt { .. })
    ));

    // Reading a missing file is a typed IO error, not a panic.
    assert!(matches!(
        Trace::read_file("/nonexistent/definitely-missing.tltr"),
        Err(TraceError::Io(_))
    ));
}

/// The committed corpus meets the acceptance criterion: ≤ 8 bytes/request on
/// average, every trace within its pinned budget.
#[test]
fn corpus_meets_the_size_budget() {
    let mut total_bytes = 0usize;
    let mut total_requests = 0usize;
    for preset in CorpusPreset::all() {
        let stats = preset.build().stats();
        assert!(stats.total_bytes <= preset.size_budget_bytes());
        total_bytes += stats.total_bytes;
        total_requests += stats.requests;
    }
    assert!(total_bytes as f64 / total_requests as f64 <= 8.0);
}

/// Transforms are deterministic per seed and replayable.
#[test]
fn transformed_variants_replay_deterministically() {
    let base = CorpusPreset::Chat.build();
    let variants = [
        base.rate_scaled(2.0),
        base.storm_injected(20.0, 5.0, 50.0, 9),
        base.tenant_shuffled(9),
    ];
    for variant in &variants {
        assert!(variant.sd_accepts().is_none());
        let decoded = Trace::from_bytes(&variant.to_bytes()).expect("round trip");
        let a = tlt::run_replay(&decoded, 2);
        let b = tlt::run_replay(&decoded, 2);
        assert_eq!(a.completed, b.completed);
    }
    // Same seed, same variant — different seed, different workload.
    assert_eq!(
        base.storm_injected(20.0, 5.0, 50.0, 9),
        base.storm_injected(20.0, 5.0, 50.0, 9)
    );
    assert_ne!(
        base.storm_injected(20.0, 5.0, 50.0, 9).arrivals(),
        base.storm_injected(20.0, 5.0, 50.0, 10).arrivals()
    );
}

/// Streamed decode must equal the in-memory decoder on arbitrary traces and
/// arbitrary (tiny) chunk capacities — records and prefix back-references
/// straddle refill boundaries at capacity 16.
mod streamed {
    use super::*;
    use std::io::Cursor;
    use tlt_trace::{replay_serving_streamed, TraceReader, TraceWriter};

    proptest! {
        #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

        /// Reader equivalence: every arrival, any chunk size.
        #[test]
        fn streamed_reader_matches_in_memory_decode(
            seed in 0u64..10_000,
            capacity_idx in 0usize..5,
        ) {
            let capacity = [16usize, 17, 63, 256, 65_536][capacity_idx];
            let arrivals = generate_arrivals(
                &ArrivalConfig::constant(8.0, 12.0, seed).with_prefix(0.7, 128),
            );
            let trace = Trace::from_arrivals("stream-prop", 1_000, &arrivals);
            let bytes = trace.to_bytes();

            let in_memory = Trace::from_bytes(&bytes).expect("decodes");
            let mut reader = TraceReader::open_with_capacity(&bytes[..], capacity).expect("opens");
            prop_assert_eq!(reader.request_count() as usize, in_memory.arrivals().len());
            let mut streamed = Vec::new();
            while let Some(a) = reader.next_arrival().expect("clean stream") {
                streamed.push(a);
            }
            prop_assert_eq!(&streamed[..], in_memory.arrivals());
        }

        /// Writer equivalence: streaming canonical arrivals produces the exact
        /// bytes of the in-memory encoder.
        #[test]
        fn streamed_writer_matches_in_memory_encode(seed in 0u64..10_000) {
            let arrivals = generate_arrivals(
                &ArrivalConfig::constant(6.0, 10.0, seed).with_prefix(0.5, 96),
            );
            let trace = Trace::from_arrivals("stream-prop", 1_000, &arrivals);
            let mut out = Vec::new();
            let mut writer = TraceWriter::new(
                &mut out,
                trace.name(),
                trace.tick_ns(),
                trace.arrivals().len() as u64,
            )
            .expect("header writes");
            for a in trace.arrivals() {
                writer.push(a).expect("record writes");
            }
            writer.finish().expect("trailer writes");
            prop_assert_eq!(out, trace.to_bytes());
        }
    }

    /// Streamed replay reproduces the in-memory replay bit for bit across the
    /// whole committed corpus (completions, goodput, SLO attainment).
    #[test]
    fn streamed_replay_matches_in_memory_replay_on_the_corpus() {
        for preset in CorpusPreset::all() {
            let trace = preset.build();
            let in_memory = tlt::run_replay(&trace, 2);
            let mut reader = TraceReader::open(Cursor::new(trace.to_bytes())).expect("opens");
            let streamed = tlt::run_replay_streamed(&mut reader, 2).expect("replays");
            assert_eq!(streamed.completed, in_memory.completed, "{}", preset.name());
            assert_eq!(streamed.goodput_rps, in_memory.goodput_rps);
            assert_eq!(streamed.slo_attainment, in_memory.slo_attainment);
            assert_eq!(
                streamed.throughput_tokens_per_s,
                in_memory.throughput_tokens_per_s
            );
        }
    }

    /// Streamed replay surfaces decode errors typed, after the fact, and a
    /// truncated stream never panics the simulator.
    #[test]
    fn streamed_replay_reports_typed_errors() {
        let bytes = CorpusPreset::Chat.build().to_bytes();
        let cut = &bytes[..bytes.len() - 9]; // inside the trailer
        let mut reader = TraceReader::open(cut).expect("header is intact");
        let err = replay_serving_streamed(&mut reader, &replay_deployment(2)).unwrap_err();
        assert!(
            matches!(err, TraceError::Truncated),
            "expected Truncated, got {err:?}"
        );
    }
}
