//! Global, allocation-free model-layer counters.
//!
//! The transformer's decode step is the one path in the tree that must never
//! allocate (enforced by `tests/alloc_free_decode.rs`), so its hooks cannot go
//! through the thread-local flight recorder API shape used elsewhere. Instead
//! they bump process-wide relaxed atomics: disabled, a hook is a single
//! relaxed load and return; enabled, it adds one `fetch_add`. Either way no
//! allocation and no locks.
//!
//! The counters feed the `--metrics` summary in `experiments`; they are not
//! part of the deterministic trace (worker threads may interleave updates).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
static DECODE_STEPS: AtomicU64 = AtomicU64::new(0);
static PREFILL_TOKENS: AtomicU64 = AtomicU64::new(0);
static SD_ROUNDS: AtomicU64 = AtomicU64::new(0);
static SD_ACCEPTED_TOKENS: AtomicU64 = AtomicU64::new(0);
static SIM_EVENTS: AtomicU64 = AtomicU64::new(0);
static SIM_STALE_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Turn the model counters on.
pub fn enable() {
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turn the model counters off (hooks return after one relaxed load).
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the counters are currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Zero all counters (enablement is unchanged).
pub fn reset() {
    DECODE_STEPS.store(0, Ordering::Relaxed);
    PREFILL_TOKENS.store(0, Ordering::Relaxed);
    SD_ROUNDS.store(0, Ordering::Relaxed);
    SD_ACCEPTED_TOKENS.store(0, Ordering::Relaxed);
    SIM_EVENTS.store(0, Ordering::Relaxed);
    SIM_STALE_EVENTS.store(0, Ordering::Relaxed);
}

/// One single-token decode step ran.
#[inline]
pub fn on_decode_step() {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    DECODE_STEPS.fetch_add(1, Ordering::Relaxed);
}

/// A prefill processed `tokens` prompt tokens.
#[inline]
pub fn on_prefill_tokens(tokens: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    PREFILL_TOKENS.fetch_add(tokens as u64, Ordering::Relaxed);
}

/// One speculative round completed, committing `accepted` tokens.
#[inline]
pub fn on_sd_round(accepted: usize) {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    SD_ROUNDS.fetch_add(1, Ordering::Relaxed);
    SD_ACCEPTED_TOKENS.fetch_add(accepted as u64, Ordering::Relaxed);
}

/// The event-core scheduler processed one simulation event.
#[inline]
pub fn on_sim_event() {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    SIM_EVENTS.fetch_add(1, Ordering::Relaxed);
}

/// The event-core heap popped a stale (lazily invalidated) entry.
#[inline]
pub fn on_sim_stale_event() {
    if !ENABLED.load(Ordering::Relaxed) {
        return;
    }
    SIM_STALE_EVENTS.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time copy of the model counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ModelCounters {
    /// Single-token decode steps.
    pub decode_steps: u64,
    /// Prompt tokens processed by prefill.
    pub prefill_tokens: u64,
    /// Speculative rounds completed.
    pub sd_rounds: u64,
    /// Tokens committed by speculative rounds.
    pub sd_accepted_tokens: u64,
    /// Simulation events processed by the serving event cores.
    pub sim_events: u64,
    /// Stale heap entries discarded by the lazy-invalidation event queue.
    pub sim_stale_events: u64,
}

impl ModelCounters {
    /// Mean accepted tokens per speculative round, or 0 with no rounds.
    pub fn mean_accept_per_round(&self) -> f64 {
        if self.sd_rounds == 0 {
            0.0
        } else {
            self.sd_accepted_tokens as f64 / self.sd_rounds as f64
        }
    }
}

/// Read all counters.
pub fn snapshot() -> ModelCounters {
    ModelCounters {
        decode_steps: DECODE_STEPS.load(Ordering::Relaxed),
        prefill_tokens: PREFILL_TOKENS.load(Ordering::Relaxed),
        sd_rounds: SD_ROUNDS.load(Ordering::Relaxed),
        sd_accepted_tokens: SD_ACCEPTED_TOKENS.load(Ordering::Relaxed),
        sim_events: SIM_EVENTS.load(Ordering::Relaxed),
        sim_stale_events: SIM_STALE_EVENTS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hooks_are_inert_when_disabled_and_count_when_enabled() {
        // Counters are process-global; this test serialises with itself only,
        // so it asserts deltas rather than absolute values.
        disable();
        let before = snapshot();
        on_decode_step();
        on_prefill_tokens(64);
        on_sd_round(3);
        assert_eq!(snapshot(), before, "disabled hooks must not count");

        enable();
        let base = snapshot();
        on_decode_step();
        on_decode_step();
        on_prefill_tokens(64);
        on_sd_round(3);
        let after = snapshot();
        disable();
        assert_eq!(after.decode_steps - base.decode_steps, 2);
        assert_eq!(after.prefill_tokens - base.prefill_tokens, 64);
        assert_eq!(after.sd_rounds - base.sd_rounds, 1);
        assert_eq!(after.sd_accepted_tokens - base.sd_accepted_tokens, 3);
    }

    #[test]
    fn mean_accept_per_round_handles_zero_rounds() {
        let c = ModelCounters::default();
        assert_eq!(c.mean_accept_per_round(), 0.0);
        let c = ModelCounters {
            sd_rounds: 4,
            sd_accepted_tokens: 10,
            ..ModelCounters::default()
        };
        assert_eq!(c.mean_accept_per_round(), 2.5);
    }
}
