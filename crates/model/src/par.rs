//! Minimal deterministic worker pool used for batched rollout and microbatched
//! drafter training.
//!
//! [`parallel_map`] fans a list of independent work items over a small pool of
//! scoped threads (fed through crossbeam MPMC channels) and returns the results
//! **in input order**, so callers observe exactly the sequential result no matter
//! how the OS schedules the workers — determinism is preserved by construction.
//! With one worker (or one item) it degrades to a plain sequential map with zero
//! threading overhead.

use std::num::NonZeroUsize;

/// Worker budget: the `TLT_NUM_THREADS` environment variable when set (minimum
/// 1), otherwise the machine's available parallelism.
pub fn max_workers() -> usize {
    std::env::var("TLT_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Applies `f` to every item on a worker pool and returns the results in input
/// order. `f` receives `(index, item)` so callers can derive per-item seeds.
///
/// The output is identical to `items.into_iter().enumerate().map(f).collect()`
/// regardless of worker count; parallelism only changes wall-clock time.
///
/// # Panics
///
/// Propagates any panic raised by `f` once all workers have been joined.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let workers = max_workers().min(items.len());
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let n = items.len();
    let (task_tx, task_rx) = crossbeam::channel::unbounded::<(usize, T)>();
    let (result_tx, result_rx) = crossbeam::channel::unbounded::<(usize, R)>();
    for pair in items.into_iter().enumerate() {
        if task_tx.send(pair).is_err() {
            unreachable!("task receiver outlives the fill loop");
        }
    }
    drop(task_tx);

    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let task_rx = task_rx.clone();
            let result_tx = result_tx.clone();
            let f = &f;
            scope.spawn(move || {
                while let Ok((i, item)) = task_rx.recv() {
                    if result_tx.send((i, f(i, item))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(result_tx);
        drop(task_rx);
        while let Ok((i, r)) = result_rx.recv() {
            results[i] = Some(r);
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("every work item produces a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_input_order() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(items, |i, item| {
            assert_eq!(i, item);
            item * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map_for_stateful_work() {
        let items: Vec<u64> = (0..16).collect();
        let parallel = parallel_map(items.clone(), |i, seed| {
            use rand::rngs::StdRng;
            use rand::{Rng, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
            (0..100).map(|_| rng.gen_range(0..1000u32)).sum::<u32>()
        });
        let sequential: Vec<u32> = items
            .into_iter()
            .enumerate()
            .map(|(i, seed)| {
                use rand::rngs::StdRng;
                use rand::{Rng, SeedableRng};
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64));
                (0..100).map(|_| rng.gen_range(0..1000u32)).sum::<u32>()
            })
            .collect();
        assert_eq!(parallel, sequential);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }
}
