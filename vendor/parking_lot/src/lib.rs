//! Offline shim for the subset of `parking_lot` used by this workspace:
//! `Mutex` and `RwLock` whose lock methods return guards directly (no
//! `Result`), implemented over `std::sync` with poisoning swallowed.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::PoisonError;

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;
/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
