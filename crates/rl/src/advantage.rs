//! Group-based advantage estimators for reasoning RL.
//!
//! GRPO and its siblings (RLOO, REINFORCE, REINFORCE++) share the same rollout →
//! inference → training workflow and differ mainly in how per-response rewards are
//! turned into advantages (§2.1, §7 of the paper). All of them avoid a learned value
//! model, which is what makes the rule-based reward pipeline possible.

use serde::{Deserialize, Serialize};

/// Which RL algorithm's advantage estimator to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RlAlgorithm {
    /// Group Relative Policy Optimization: z-scored rewards within each prompt group.
    Grpo,
    /// REINFORCE-Leave-One-Out: reward minus the mean of the *other* group members.
    Rloo,
    /// Plain REINFORCE: raw rewards (no baseline).
    Reinforce,
    /// REINFORCE++: rewards normalised by the global batch mean and standard deviation.
    ReinforcePlusPlus,
}

impl RlAlgorithm {
    /// All supported algorithms.
    pub fn all() -> [RlAlgorithm; 4] {
        [
            RlAlgorithm::Grpo,
            RlAlgorithm::Rloo,
            RlAlgorithm::Reinforce,
            RlAlgorithm::ReinforcePlusPlus,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RlAlgorithm::Grpo => "GRPO",
            RlAlgorithm::Rloo => "RLOO",
            RlAlgorithm::Reinforce => "REINFORCE",
            RlAlgorithm::ReinforcePlusPlus => "REINFORCE++",
        }
    }
}

/// Computes per-response advantages for a batch of prompt groups.
///
/// `rewards_per_group[g][i]` is the reward of the `i`-th response to prompt `g`.
/// The returned structure mirrors the input shape.
pub fn compute_advantages(algorithm: RlAlgorithm, rewards_per_group: &[Vec<f32>]) -> Vec<Vec<f32>> {
    match algorithm {
        RlAlgorithm::Grpo => rewards_per_group.iter().map(|g| grpo_group(g)).collect(),
        RlAlgorithm::Rloo => rewards_per_group.iter().map(|g| rloo_group(g)).collect(),
        RlAlgorithm::Reinforce => rewards_per_group.to_vec(),
        RlAlgorithm::ReinforcePlusPlus => global_normalised(rewards_per_group),
    }
}

fn grpo_group(rewards: &[f32]) -> Vec<f32> {
    if rewards.is_empty() {
        return Vec::new();
    }
    let mean = rewards.iter().sum::<f32>() / rewards.len() as f32;
    let var = rewards.iter().map(|r| (r - mean).powi(2)).sum::<f32>() / rewards.len() as f32;
    let std = var.sqrt().max(1e-6);
    rewards.iter().map(|r| (r - mean) / std).collect()
}

fn rloo_group(rewards: &[f32]) -> Vec<f32> {
    let n = rewards.len();
    if n <= 1 {
        return vec![0.0; n];
    }
    let sum: f32 = rewards.iter().sum();
    rewards
        .iter()
        .map(|&r| r - (sum - r) / (n - 1) as f32)
        .collect()
}

fn global_normalised(groups: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let all: Vec<f32> = groups.iter().flatten().copied().collect();
    if all.is_empty() {
        return groups.to_vec();
    }
    let mean = all.iter().sum::<f32>() / all.len() as f32;
    let var = all.iter().map(|r| (r - mean).powi(2)).sum::<f32>() / all.len() as f32;
    let std = var.sqrt().max(1e-6);
    groups
        .iter()
        .map(|g| g.iter().map(|r| (r - mean) / std).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grpo_advantages_are_zero_mean_within_group() {
        let groups = vec![vec![1.0, 0.0, 0.0, 1.0], vec![1.0, 1.0, 0.0, 0.0]];
        let adv = compute_advantages(RlAlgorithm::Grpo, &groups);
        for g in adv {
            let mean: f32 = g.iter().sum::<f32>() / g.len() as f32;
            assert!(mean.abs() < 1e-5);
        }
    }

    #[test]
    fn grpo_rewards_correct_responses_more() {
        let groups = vec![vec![1.0, 0.0, 0.0, 0.0]];
        let adv = compute_advantages(RlAlgorithm::Grpo, &groups);
        assert!(adv[0][0] > 0.0);
        assert!(adv[0][1] < 0.0);
    }

    #[test]
    fn grpo_uniform_rewards_give_zero_advantage() {
        // If every response in the group gets the same reward there is no signal.
        let groups = vec![vec![1.0, 1.0, 1.0]];
        let adv = compute_advantages(RlAlgorithm::Grpo, &groups);
        for a in &adv[0] {
            assert!(a.abs() < 1e-3);
        }
    }

    #[test]
    fn rloo_leave_one_out_baseline() {
        let groups = vec![vec![1.0, 0.0]];
        let adv = compute_advantages(RlAlgorithm::Rloo, &groups);
        assert_eq!(adv[0], vec![1.0, -1.0]);
        // Single-response groups have no leave-one-out baseline.
        let single = compute_advantages(RlAlgorithm::Rloo, &[vec![1.0]]);
        assert_eq!(single[0], vec![0.0]);
    }

    #[test]
    fn reinforce_passes_rewards_through() {
        let groups = vec![vec![0.25, 0.75]];
        assert_eq!(compute_advantages(RlAlgorithm::Reinforce, &groups), groups);
    }

    #[test]
    fn reinforce_plus_plus_normalises_globally() {
        let groups = vec![vec![1.0, 0.0], vec![1.0, 0.0]];
        let adv = compute_advantages(RlAlgorithm::ReinforcePlusPlus, &groups);
        let all: Vec<f32> = adv.iter().flatten().copied().collect();
        let mean: f32 = all.iter().sum::<f32>() / all.len() as f32;
        assert!(mean.abs() < 1e-5);
        assert!(all[0] > 0.0 && all[1] < 0.0);
    }

    #[test]
    fn algorithm_names_are_stable() {
        assert_eq!(RlAlgorithm::Grpo.name(), "GRPO");
        assert_eq!(RlAlgorithm::all().len(), 4);
    }
}
