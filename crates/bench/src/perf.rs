//! Pinned performance workloads and the `BENCH_<n>.json` trajectory writer.
//!
//! `experiments -- perf` runs a fixed set of micro and end-to-end workloads on
//! the tiny-model substrate and writes the measured numbers as machine-readable
//! JSON (via the same [`JsonValue`] writer the experiment tables use), so every
//! PR can append a comparable point to the repository's perf trajectory
//! (`BENCH_7.json` for this change). Workload *definitions* are pinned: names,
//! shapes, seeds, and token budgets must stay stable across PRs so the series
//! stays comparable; only the measured values change. Since `tlt-perf-v2` the
//! report also records the kernel dispatch table the run executed with (and
//! where it came from: compiled-in default, committed profile, or a fresh
//! autotune), so a trajectory point is reproducible down to kernel selection.

use crate::json::JsonValue;
use crate::setups::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;
use tlt_draft::{DraftModel, DrafterTrainer, FeatureSource, TrainerConfig, TrainingSample};
use tlt_model::{DecodeWorkspace, DispatchTable, Mat, ModelConfig, SamplingParams, TinyLm};
use tlt_rollout::{
    generate_batch, generate_group, simulate_rollout_batch, speculative_generate, vanilla_generate,
    SdManagerConfig, SdMode, SdStrategy, SimRolloutConfig, SpecDrafter,
};
use tlt_trace::MILLION_REQUESTS;

/// One measured workload.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// Stable workload identifier.
    pub name: &'static str,
    /// Metric description (what `value` measures).
    pub metric: &'static str,
    /// Measured value.
    pub value: f64,
    /// Unit of `value`.
    pub unit: &'static str,
    /// Repetitions timed.
    pub reps: u32,
}

fn time_per_rep<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    start.elapsed().as_secs_f64() / f64::from(reps)
}

/// Mean time per call inside the fastest of 15 equal slices of `reps` total
/// calls. Micro kernels run sub-microsecond: one long mean absorbs every
/// co-tenant interference spike on a shared machine, whereas the fastest
/// chunk estimates the uncontended latency and is stable run to run.
fn min_time_per_rep<F: FnMut()>(reps: u32, mut f: F) -> f64 {
    let chunks = 15u32;
    let per_chunk = (reps / chunks).max(1);
    let mut best = f64::INFINITY;
    for _ in 0..chunks {
        let start = Instant::now();
        for _ in 0..per_chunk {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64() / f64::from(per_chunk));
    }
    best
}

/// Runs every pinned workload and returns the measured points.
pub fn run_perf_workloads(scale: Scale) -> Vec<PerfPoint> {
    let reps: u32 = if scale == Scale::Full { 30 } else { 3 };
    let mut points = Vec::new();

    // --- Micro: matmul kernels on the decode- and training-critical shapes ---
    let mut rng = StdRng::seed_from_u64(1);
    let a1 = Mat::random_uniform(1, 32, 1.0, &mut rng);
    let b = Mat::random_uniform(32, 96, 1.0, &mut rng);
    let mut out = Mat::zeros(1, 96);
    let micro_reps = reps * 10_000;
    let t = min_time_per_rep(micro_reps, || a1.matmul_into(&b, &mut out));
    points.push(PerfPoint {
        name: "matvec_1x32_32x96",
        metric: "latency per call",
        value: t * 1e9,
        unit: "ns",
        reps: micro_reps,
    });

    let a64 = Mat::random_uniform(64, 64, 1.0, &mut rng);
    let b64 = Mat::random_uniform(64, 64, 1.0, &mut rng);
    let mut out64 = Mat::zeros(64, 64);
    let t = min_time_per_rep(micro_reps / 10, || a64.matmul_into(&b64, &mut out64));
    points.push(PerfPoint {
        name: "matmul_64x64_64x64",
        metric: "latency per call",
        value: t * 1e6,
        unit: "us",
        reps: micro_reps / 10,
    });

    let g = Mat::random_uniform(20, 96, 1.0, &mut rng);
    let w = Mat::random_uniform(32, 96, 1.0, &mut rng);
    let mut out_t = Mat::zeros(20, 32);
    let t = min_time_per_rep(micro_reps / 10, || g.matmul_transposed_into(&w, &mut out_t));
    points.push(PerfPoint {
        name: "matmul_transposed_20x96_32x96T",
        metric: "latency per call",
        value: t * 1e6,
        unit: "us",
        reps: micro_reps / 10,
    });

    // Long-context attention row: one mat-vec against a 2048-token history.
    // This is the shape class the k-blocked dispatch candidates exist for.
    let a_long = Mat::random_uniform(1, 2048, 1.0, &mut rng);
    let b_long = Mat::random_uniform(2048, 96, 1.0, &mut rng);
    let mut out_long = Mat::zeros(1, 96);
    let t = min_time_per_rep(micro_reps / 50, || {
        a_long.matmul_into(&b_long, &mut out_long)
    });
    points.push(PerfPoint {
        name: "matvec_longk_1x2048_2048x96",
        metric: "latency per call",
        value: t * 1e6,
        unit: "us",
        reps: micro_reps / 50,
    });

    // --- Decode: allocation-free single-token steps (tiny config) ---
    let target = TinyLm::new(ModelConfig::tiny(), 11);
    let mut cache = target.new_cache();
    let mut ws = DecodeWorkspace::new(&target.config);
    target.forward_into(&[1, 5, 9, 2], &mut cache, &mut ws);
    let decode_reps = reps * 20;
    let tokens_per_rep = 64u32;
    let t = time_per_rep(decode_reps, || {
        cache.truncate(4);
        for i in 0..tokens_per_rep {
            let _ = target.decode_step(i % 90, &mut cache, &mut ws);
        }
    });
    points.push(PerfPoint {
        name: "decode_steps_tiny",
        metric: "decode steps per second",
        value: f64::from(tokens_per_rep) / t,
        unit: "steps/s",
        reps: decode_reps,
    });

    // --- Token-level generation: vanilla and speculative, 64 tokens ---
    let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 12);
    let prompt = [1u32, 5, 9, 2];
    let params = SamplingParams::greedy();
    let gen_reps = reps * 5;
    let t = time_per_rep(gen_reps, || {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = vanilla_generate(&target, &prompt, 64, params, None, &mut rng);
    });
    points.push(PerfPoint {
        name: "vanilla_generate_64",
        metric: "generated tokens per second",
        value: 64.0 / t,
        unit: "tokens/s",
        reps: gen_reps,
    });
    let t = time_per_rep(gen_reps, || {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = speculative_generate(
            &target,
            &SpecDrafter::Learned(&drafter),
            &prompt,
            64,
            SdStrategy::default(),
            params,
            None,
            &mut rng,
        );
    });
    points.push(PerfPoint {
        name: "speculative_generate_64",
        metric: "generated tokens per second",
        value: 64.0 / t,
        unit: "tokens/s",
        reps: gen_reps,
    });

    // --- Parallel batched rollout: 8 sequences on the worker pool ---
    let prompts: Vec<Vec<u32>> = (0..8u32).map(|i| vec![i + 1, 5, 9, 2]).collect();
    let batch_reps = reps;
    let t = time_per_rep(batch_reps, || {
        let _ = generate_batch(
            &target,
            None,
            &prompts,
            32,
            SdStrategy::default(),
            params,
            None,
            7,
        );
    });
    points.push(PerfPoint {
        name: "generate_batch_8x32",
        metric: "generated tokens per second across the batch",
        value: 8.0 * 32.0 / t,
        unit: "tokens/s",
        reps: batch_reps,
    });

    // --- Paged KV: rollout group forking one shared prompt KV (8 continuations) ---
    let mut pool = target.new_paged_pool(16, 4096);
    let group_prompt = [1u32, 5, 9, 2, 7, 3, 8, 4];
    let t = time_per_rep(batch_reps, || {
        let _ = generate_group(
            &target,
            None,
            &group_prompt,
            8,
            32,
            SdStrategy::default(),
            params,
            None,
            7,
            &mut pool,
            None,
        );
    });
    points.push(PerfPoint {
        name: "paged_group_generate_8x32",
        metric: "generated tokens per second across the forked group",
        value: 8.0 * 32.0 / t,
        unit: "tokens/s",
        reps: batch_reps,
    });

    // --- Paged KV serving: goodput of block admission + prefix sharing vs the
    //     flat token budget at a tight KV budget (deterministic simulation;
    //     the recorded value is the paged/token goodput ratio, > 1 = win) ---
    let (paged, tokens) = tlt::run_prefix_sharing_comparison(1, 16.0, 0.6, 768);
    points.push(PerfPoint {
        name: "paged_vs_token_goodput_ratio",
        metric: "goodput ratio, paged blocks over token budget (60% shared prompts)",
        value: paged.goodput_rps / tokens.goodput_rps.max(1e-9),
        unit: "x",
        reps: 1,
    });

    // --- Heterogeneous serving: queue-aware routing vs round-robin on an
    //     H100 + A100 + RTX 4090 fleet (deterministic simulation; the recorded
    //     value is the JSQ/RR goodput ratio, > 1 = win) ---
    let hetero = tlt::run_heterogeneous_comparison(
        &[
            tlt_gpusim::GpuType::H100,
            tlt_gpusim::GpuType::A100,
            tlt_gpusim::GpuType::Rtx4090,
        ],
        12.0,
    );
    let rr = &hetero[0].1;
    let jsq = &hetero[1].1;
    points.push(PerfPoint {
        name: "hetero_jsq_vs_rr_goodput_ratio",
        metric: "goodput ratio, join-shortest-queue over round-robin (H100+A100+RTX4090)",
        value: jsq.goodput_rps / rr.goodput_rps.max(1e-9),
        unit: "x",
        reps: 1,
    });

    // --- Disaggregated serving: prefill/decode pools with KV block migration,
    //     prefix-affinity routing, and a scale-down autoscaler vs an equal-size
    //     monolithic fleet (deterministic simulation; the recorded value is the
    //     geomean goodput-per-replica ratio over the rate sweep, > 1 = win) ---
    // The sweep is identical at both scales: the ratio is a deterministic
    // simulation output, and keeping it scale-independent lets the CI trend
    // gate compare a `--quick` run against the committed full-scale baseline.
    let disagg_rates: &[f64] = &[20.0, 60.0, 100.0, 160.0, 240.0];
    let log_ratio_sum: f64 = disagg_rates
        .iter()
        .map(|&rate| {
            let (cluster, mono) = tlt::run_disagg_comparison(3, 5, rate, 0.6, 768);
            let ratio = cluster.goodput_per_replica / (mono.goodput_rps / 8.0).max(1e-9);
            ratio.max(1e-9).ln()
        })
        .sum();
    points.push(PerfPoint {
        name: "disagg_vs_monolithic_goodput_ratio",
        metric: "goodput-per-replica ratio, disaggregated 3P+5D over 8 monolithic \
                 (geomean over the 20-240 req/s sweep)",
        value: (log_ratio_sum / disagg_rates.len() as f64).exp(),
        unit: "x",
        reps: 1,
    });

    // --- Drafter training: one EAGLE iteration over 4 microbatched samples ---
    let mut rng = StdRng::seed_from_u64(5);
    let samples: Vec<TrainingSample> = (0..4)
        .map(|i| {
            use rand::Rng;
            let len = 16 + (i % 4) * 4;
            let tokens: Vec<u32> = (0..len)
                .map(|_| rng.gen_range(0..target.config.vocab_size as u32))
                .collect();
            TrainingSample::from_rollout(
                &target,
                FeatureSource::LastLayer,
                &tokens,
                len - 4,
                0,
                i as u64,
            )
        })
        .collect();
    let refs: Vec<&TrainingSample> = samples.iter().collect();
    let mut trainer = DrafterTrainer::new(&target, TrainerConfig::default(), 2);
    let train_reps = reps * 50;
    let t = time_per_rep(train_reps, || {
        let _ = trainer.train_iteration(&target, &refs);
    });
    points.push(PerfPoint {
        name: "drafter_train_iteration",
        metric: "training iterations per second",
        value: 1.0 / t,
        unit: "iters/s",
        reps: train_reps,
    });

    // --- End-to-end: timing-level batched rollout simulation (4 groups) ---
    let cost = tlt_gpusim::LlmCostModel::new(
        tlt_model::ModelSpec::qwen2_5_7b(),
        tlt_gpusim::GpuType::H100.spec(),
        1,
    );
    let config = SimRolloutConfig::vanilla(cost).with_sd_mode(SdMode::Adaptive {
        config: SdManagerConfig::default(),
    });
    let mut rng = StdRng::seed_from_u64(9);
    let dist = tlt_workload::LengthDistribution::LongTailMixture {
        mu: 6.0,
        sigma: 0.8,
        truncation_mass: 0.03,
        max_len: 4096,
    };
    let groups: Vec<Vec<usize>> = (0..4).map(|_| dist.sample_many(24, &mut rng)).collect();
    let sim_reps = reps;
    let t = time_per_rep(sim_reps, || {
        let _ = simulate_rollout_batch(&config, &groups);
    });
    points.push(PerfPoint {
        name: "sim_rollout_batch_4x24",
        metric: "simulated rollout groups per second",
        value: 4.0 / t,
        unit: "groups/s",
        reps: sim_reps,
    });

    // --- Trace replay: decode the pinned chat trace and re-drive the replay
    // deployment through it (the `experiments -- replay` hot path) ---
    let chat_bytes = tlt_trace::CorpusPreset::Chat.build().to_bytes();
    let mut requests = 0usize;
    let replay_reps = reps;
    let t = time_per_rep(replay_reps, || {
        let trace = tlt_trace::Trace::from_bytes(&chat_bytes).expect("pinned trace decodes");
        requests = trace.arrivals().len();
        let _ = tlt::run_replay(&trace, 2);
    });
    points.push(PerfPoint {
        name: "trace_replay_chat",
        metric: "replayed requests per second (decode + simulate, chat corpus trace)",
        value: requests as f64 / t,
        unit: "req/s",
        reps: replay_reps,
    });

    // --- Streamed million-request replay: derive the pinned 1M-request trace
    // to a file, then re-drive the replay deployment straight from a chunked
    // decode — peak memory is the reader's 64 KiB window plus live sim state,
    // never the million-arrival vector. One rep: the workload is macro-scale.
    let million_path = std::env::temp_dir().join("tlt_derived_million.tltr");
    let file = std::fs::File::create(&million_path).expect("temp trace file creates");
    let checksum = tlt_trace::write_derived_trace(std::io::BufWriter::new(file), MILLION_REQUESTS)
        .expect("derived trace generates");
    assert_eq!(
        checksum,
        tlt_trace::MILLION_CHECKSUM,
        "derived million-request trace drifted from its pinned checksum"
    );
    let t = time_per_rep(1, || {
        let mut reader =
            tlt_trace::TraceReader::<std::fs::File>::open_file(million_path.to_str().unwrap())
                .expect("derived trace opens");
        let report = tlt::run_replay_streamed(&mut reader, 4).expect("derived trace replays");
        assert_eq!(report.completed.len() as u64, MILLION_REQUESTS);
    });
    let _ = std::fs::remove_file(&million_path);
    points.push(PerfPoint {
        name: "trace_replay_1m_streamed",
        metric: "replayed requests per second (streamed decode + simulate, derived 1M trace)",
        value: MILLION_REQUESTS as f64 / t,
        unit: "req/s",
        reps: 1,
    });

    // --- Event core: indexed-heap speedup over the linear next-event scan on
    // a 64-replica serving sweep (same seeds, bit-identical reports — the
    // ratio isolates pure event-selection cost) ---
    // Best-of-7 per core: the ratio of two ~100ms walls jitters several
    // percent run-to-run, so both minima need enough reps to converge before
    // the CI floor on the committed ratio is meaningful.
    let speedup_reps = if scale == Scale::Full { 7 } else { 1 };
    let cost64 = tlt_gpusim::LlmCostModel::new(
        tlt_model::ModelSpec::qwen2_5_7b(),
        tlt_gpusim::GpuType::H100.spec(),
        1,
    );
    let config64 = tlt_serve::ServeConfig::new(cost64, 64);
    // Light per-replica load (~1.5 req/s each): small decode batches keep the
    // per-step simulation cost low, so the measured ratio isolates event
    // *selection* — the O(replicas) scan vs the O(log live) heap — rather
    // than batch arithmetic both cores share.
    let arrivals64 =
        tlt_workload::generate_arrivals(&tlt_workload::ArrivalConfig::constant(100.0, 120.0, 21));
    let run_core = |core: tlt_serve::EventCore| {
        let mut sim = tlt_serve::ServeSim::new(&config64);
        sim.set_event_core(core);
        for a in &arrivals64 {
            sim.advance_before(a.time_s());
            sim.offer(tlt_serve::ServeRequest::from_arrival(a));
        }
        sim.run_until_drained();
        sim.into_report()
    };
    let mut heap_wall = f64::INFINITY;
    let mut scan_wall = f64::INFINITY;
    for _ in 0..speedup_reps {
        let start = Instant::now();
        let heap_report = run_core(tlt_serve::EventCore::IndexedHeap);
        heap_wall = heap_wall.min(start.elapsed().as_secs_f64());
        let start = Instant::now();
        let scan_report = run_core(tlt_serve::EventCore::LinearScan);
        scan_wall = scan_wall.min(start.elapsed().as_secs_f64());
        assert_eq!(
            heap_report.completed, scan_report.completed,
            "event cores must stay bit-identical"
        );
    }
    points.push(PerfPoint {
        name: "sim_event_core_speedup",
        metric: "serving-sim wall-clock ratio, linear scan over indexed heap (64 replicas)",
        value: scan_wall / heap_wall.max(1e-12),
        unit: "x",
        reps: speedup_reps,
    });

    points
}

/// Serialises perf points as the `BENCH_<n>.json` document. `dispatch_source`
/// names where the active kernel dispatch table came from (`"default"`,
/// `"profile:<path>"`, or `"autotune"`); the table itself is read from the
/// process-wide dispatch state so the report records exactly what ran.
pub fn perf_report_json(points: &[PerfPoint], scale: Scale, dispatch_source: &str) -> JsonValue {
    let table = DispatchTable::current();
    let dispatch_entries: Vec<(&'static str, JsonValue)> = tlt_model::KernelOp::all()
        .into_iter()
        .map(|op| {
            let classes = tlt_model::ShapeClass::all()
                .into_iter()
                .map(|class| {
                    let variant = table
                        .entries()
                        .into_iter()
                        .find(|(o, c, _)| *o == op && *c == class)
                        .map(|(_, _, v)| v)
                        .expect("entries cover every slot");
                    (class.name(), JsonValue::string(variant))
                })
                .collect();
            (op.name(), JsonValue::object(classes))
        })
        .collect();
    JsonValue::object(vec![
        ("bench", JsonValue::Number(7.0)),
        ("schema", JsonValue::string("tlt-perf-v2")),
        (
            "scale",
            JsonValue::string(if scale == Scale::Full {
                "full"
            } else {
                "quick"
            }),
        ),
        (
            "workers",
            JsonValue::Number(tlt_model::max_workers() as f64),
        ),
        (
            "dispatch",
            JsonValue::object(vec![
                ("source", JsonValue::string(dispatch_source)),
                (
                    "target",
                    JsonValue::string(tlt_model::autotune::target_name()),
                ),
                ("table", JsonValue::object(dispatch_entries)),
            ]),
        ),
        (
            "workloads",
            JsonValue::Array(
                points
                    .iter()
                    .map(|p| {
                        JsonValue::object(vec![
                            ("name", JsonValue::string(p.name)),
                            ("metric", JsonValue::string(p.metric)),
                            ("value", JsonValue::Number(p.value)),
                            ("unit", JsonValue::string(p.unit)),
                            ("reps", JsonValue::Number(f64::from(p.reps))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs the pinned workloads and writes `path`; prints a human-readable
/// summary. `dispatch_source` is recorded in the report's `dispatch` section
/// (the caller installs any profile or autotuned table *before* calling this).
///
/// # Errors
///
/// Returns any I/O error from writing the report file.
pub fn run_perf(
    scale: Scale,
    path: &str,
    dispatch_source: &str,
) -> std::io::Result<Vec<PerfPoint>> {
    let points = run_perf_workloads(scale);
    println!("\n=== perf workloads (scale: {scale:?}) ===");
    for p in &points {
        println!(
            "{:34} {:>14.2} {:<9} ({})",
            p.name, p.value, p.unit, p.metric
        );
    }
    let table = DispatchTable::current();
    println!("dispatch table ({dispatch_source}):");
    for (op, class, variant) in table.entries() {
        println!("  {:>3} / {:<10} -> {variant}", op.name(), class.name());
    }
    let json = perf_report_json(&points, scale, dispatch_source);
    // Structural sanity before writing: every workload must carry a finite value,
    // otherwise the trajectory file would be malformed (numbers render as null).
    assert!(
        points.iter().all(|p| p.value.is_finite()),
        "perf produced a non-finite measurement"
    );
    assert!(!points.is_empty(), "perf produced no workloads");
    std::fs::write(path, format!("{json}\n"))?;
    println!("wrote perf trajectory point to {path}");
    Ok(points)
}
