//! Spot-trainer demo: the worker coordinator promotes idle rollout workers to drafter
//! training, trains the drafter on cached rollout data, checkpoints it selectively and
//! asynchronously, and preempts training the moment rollout work returns.
//!
//! Run with `cargo run -p tlt --release --example spot_trainer_demo`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tlt_coord::{Coordinator, CoordinatorConfig, WorkerEvent, WorkerState};
use tlt_draft::{
    CheckpointMode, CheckpointStore, DataBuffer, DataBufferConfig, DrafterTrainer, FeatureSource,
    TrainerConfig, TrainingSample,
};
use tlt_model::{ModelConfig, TinyLm};

fn main() {
    let target = TinyLm::new(ModelConfig::tiny(), 3);
    let mut trainer = DrafterTrainer::new(&target, TrainerConfig::default(), 4);
    let mut buffer = DataBuffer::new(DataBufferConfig::default());
    let mut store = CheckpointStore::new();
    let mut coordinator = Coordinator::new(4, CoordinatorConfig::default());
    let mut rng = StdRng::seed_from_u64(5);

    // Cache some rollout by-products (hidden states + tokens) into the DataBuffer.
    for i in 0..8 {
        let len = 16 + (i % 4) * 6;
        let tokens: Vec<u32> = (0..len)
            .map(|_| rng.gen_range(0..target.config.vocab_size as u32))
            .collect();
        buffer.push(TrainingSample::from_rollout(
            &target,
            FeatureSource::LastLayer,
            &tokens,
            len - 4,
            0,
            i as u64,
        ));
    }

    // Workers drain one by one during the long tail; the coordinator promotes them.
    for (worker, at) in [(1usize, 10.0f64), (2, 14.0), (3, 21.0)] {
        let commands = coordinator.handle_event(
            WorkerEvent::StateChanged {
                worker,
                state: WorkerState::Idle,
                at,
            },
            at,
        );
        println!(
            "t={at:5.1}s worker W{worker} idle -> {} command(s) issued",
            commands.len()
        );
        // Each promoted worker contributes a few drafter-training iterations.
        for _ in 0..4 {
            let batch = buffer.sample_batch(4, &mut rng);
            if let Some(m) = trainer.train_iteration(&target, &batch) {
                println!(
                    "    drafter iteration {:3}: top-3 accuracy {:.3}",
                    m.iteration, m.top3_accuracy
                );
            }
        }
        let report = store.checkpoint(CheckpointMode::SelectiveAsync, &trainer.drafter, &target);
        println!(
            "    selective async checkpoint: blocked {} us, wrote {} bytes",
            report.blocking_us, report.bytes_written
        );
    }

    // Rollout for the next RL step arrives: preempt training everywhere.
    let commands = coordinator.preempt_for_rollout();
    store.wait_for_pending();
    println!(
        "rollout resumed: {} preemption/start commands, {} training sessions preempted, drafter version {}",
        commands.len(),
        coordinator.stats().sessions_preempted,
        trainer.drafter.version
    );
}
