//! Synthetic verifiable reasoning tasks for the tiny-model RL substrate.
//!
//! The paper trains on Eurus-2-RL (math/coding problems with rule-based verifiers).
//! Those datasets and their verifiers target full-size LLMs; for the tiny
//! transformer we substitute modular-arithmetic chain problems with the same
//! *structure*: a prompt posing a question, a free-form "reasoning" region the policy
//! may fill arbitrarily, and a rule-based verifier that checks only the final answer
//! — exactly the reward shape GRPO consumes.

use rand::Rng;
use serde::{Deserialize, Serialize};
use tlt_model::TokenId;

/// Special-token layout of the synthetic vocabulary.
///
/// Token ids `0..modulus` are the digits; the named constants below follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Vocabulary {
    /// Number of digit tokens (the arithmetic is performed modulo this value).
    pub modulus: u32,
}

impl Vocabulary {
    /// Creates the vocabulary layout for a model with `vocab_size` tokens.
    ///
    /// # Panics
    ///
    /// Panics if the vocabulary cannot hold at least 4 digits plus the special tokens.
    pub fn for_vocab_size(vocab_size: usize) -> Self {
        assert!(vocab_size >= 16, "vocab too small for reasoning tasks");
        let modulus = (vocab_size as u32 - 6).min(10);
        Vocabulary { modulus }
    }

    /// "Beginning of sequence" token.
    pub fn bos(&self) -> TokenId {
        self.modulus
    }
    /// Addition operator token.
    pub fn plus(&self) -> TokenId {
        self.modulus + 1
    }
    /// Equality token separating question from response.
    pub fn equals(&self) -> TokenId {
        self.modulus + 2
    }
    /// Marker preceding the final answer digit.
    pub fn answer_marker(&self) -> TokenId {
        self.modulus + 3
    }
    /// End-of-sequence token.
    pub fn eos(&self) -> TokenId {
        self.modulus + 4
    }
    /// Filler "thinking" token the policy may emit freely.
    pub fn think(&self) -> TokenId {
        self.modulus + 5
    }
    /// Total number of token ids used by the task encoding.
    pub fn used_tokens(&self) -> usize {
        (self.modulus + 6) as usize
    }
}

/// One verifiable reasoning problem: compute the sum of `operands` modulo the
/// vocabulary modulus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReasoningTask {
    /// Vocabulary layout used to encode the task.
    pub vocab: Vocabulary,
    /// The digit operands.
    pub operands: Vec<u32>,
    /// Unique task identifier.
    pub id: u64,
}

impl ReasoningTask {
    /// The correct answer digit.
    pub fn answer(&self) -> u32 {
        self.operands.iter().sum::<u32>() % self.vocab.modulus
    }

    /// Encodes the prompt: `BOS d1 + d2 + ... + dn =`.
    pub fn prompt_tokens(&self) -> Vec<TokenId> {
        let mut tokens = vec![self.vocab.bos()];
        for (i, &d) in self.operands.iter().enumerate() {
            if i > 0 {
                tokens.push(self.vocab.plus());
            }
            tokens.push(d);
        }
        tokens.push(self.vocab.equals());
        tokens
    }

    /// A gold response with `think_len` filler tokens before the answer — used for
    /// warm-up supervision and tests.
    pub fn gold_response(&self, think_len: usize) -> Vec<TokenId> {
        let mut tokens = Vec::with_capacity(think_len + 3);
        tokens.extend(std::iter::repeat_n(self.vocab.think(), think_len));
        tokens.push(self.vocab.answer_marker());
        tokens.push(self.answer());
        tokens.push(self.vocab.eos());
        tokens
    }

    /// Rule-based verifier: the response is correct iff the token immediately after
    /// the *last* answer marker equals the correct digit. This mirrors the paper's
    /// rule-based reward ("correctness of the final answer"), allowing arbitrary
    /// reasoning content before it.
    pub fn verify(&self, response: &[TokenId]) -> bool {
        let marker = self.vocab.answer_marker();
        let Some(pos) = response.iter().rposition(|&t| t == marker) else {
            return false;
        };
        response.get(pos + 1) == Some(&self.answer())
    }

    /// Reward of a response: 1.0 when correct, 0.0 otherwise (the paper's rule-based
    /// reward policy, §2.1 Phase 2).
    pub fn reward(&self, response: &[TokenId]) -> f32 {
        if self.verify(response) {
            1.0
        } else {
            0.0
        }
    }
}

/// Generator of random [`ReasoningTask`]s.
#[derive(Debug, Clone)]
pub struct TaskGenerator {
    vocab: Vocabulary,
    min_operands: usize,
    max_operands: usize,
    next_id: u64,
}

impl TaskGenerator {
    /// Creates a generator for a model with the given vocabulary size.
    pub fn new(vocab_size: usize) -> Self {
        TaskGenerator {
            vocab: Vocabulary::for_vocab_size(vocab_size),
            min_operands: 2,
            max_operands: 4,
            next_id: 0,
        }
    }

    /// Sets the operand-count range (more operands = harder tasks).
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or greater than `max`.
    pub fn with_operand_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "invalid operand range");
        self.min_operands = min;
        self.max_operands = max;
        self
    }

    /// Vocabulary layout used by generated tasks.
    pub fn vocabulary(&self) -> Vocabulary {
        self.vocab
    }

    /// Generates one task.
    pub fn generate<R: Rng>(&mut self, rng: &mut R) -> ReasoningTask {
        let n = rng.gen_range(self.min_operands..=self.max_operands);
        let operands = (0..n)
            .map(|_| rng.gen_range(0..self.vocab.modulus))
            .collect();
        let id = self.next_id;
        self.next_id += 1;
        ReasoningTask {
            vocab: self.vocab,
            operands,
            id,
        }
    }

    /// Generates a batch of tasks.
    pub fn generate_batch<R: Rng>(&mut self, n: usize, rng: &mut R) -> Vec<ReasoningTask> {
        (0..n).map(|_| self.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn vocabulary_layout_fits_in_vocab() {
        let v = Vocabulary::for_vocab_size(32);
        assert!(v.used_tokens() <= 32);
        assert_eq!(v.modulus, 10);
        let small = Vocabulary::for_vocab_size(16);
        assert!(small.used_tokens() <= 16);
    }

    #[test]
    #[should_panic(expected = "vocab too small")]
    fn tiny_vocab_rejected() {
        let _ = Vocabulary::for_vocab_size(8);
    }

    #[test]
    fn prompt_encoding_round_trips_operands() {
        let mut gen = TaskGenerator::new(32);
        let mut rng = StdRng::seed_from_u64(0);
        let task = gen.generate(&mut rng);
        let prompt = task.prompt_tokens();
        assert_eq!(prompt[0], task.vocab.bos());
        assert_eq!(*prompt.last().unwrap(), task.vocab.equals());
        // Every operand digit appears in the prompt.
        for &d in &task.operands {
            assert!(prompt.contains(&d));
        }
    }

    #[test]
    fn gold_response_verifies_correct() {
        let mut gen = TaskGenerator::new(64);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let task = gen.generate(&mut rng);
            for think in [0, 3, 17] {
                let response = task.gold_response(think);
                assert!(task.verify(&response));
                assert_eq!(task.reward(&response), 1.0);
            }
        }
    }

    #[test]
    fn wrong_answer_fails_verification() {
        let mut gen = TaskGenerator::new(32);
        let mut rng = StdRng::seed_from_u64(2);
        let task = gen.generate(&mut rng);
        let mut response = task.gold_response(2);
        let answer_pos = response.len() - 2;
        response[answer_pos] = (task.answer() + 1) % task.vocab.modulus;
        assert!(!task.verify(&response));
        assert_eq!(task.reward(&response), 0.0);
    }

    #[test]
    fn missing_answer_marker_fails_verification() {
        let mut gen = TaskGenerator::new(32);
        let mut rng = StdRng::seed_from_u64(3);
        let task = gen.generate(&mut rng);
        let response = vec![task.vocab.think(); 5];
        assert!(!task.verify(&response));
    }

    #[test]
    fn last_answer_marker_wins() {
        // Self-correction behaviour: a model may emit a wrong answer, "reflect", and
        // then give the right one; only the final answer counts.
        let mut gen = TaskGenerator::new(32);
        let mut rng = StdRng::seed_from_u64(4);
        let task = gen.generate(&mut rng);
        let wrong = (task.answer() + 3) % task.vocab.modulus;
        let mut response = vec![task.vocab.answer_marker(), wrong, task.vocab.think()];
        response.extend(task.gold_response(0));
        assert!(task.verify(&response));
    }

    #[test]
    fn generator_is_deterministic_per_seed_and_ids_unique() {
        let mut a = TaskGenerator::new(32);
        let mut b = TaskGenerator::new(32);
        let batch_a = a.generate_batch(20, &mut StdRng::seed_from_u64(9));
        let batch_b = b.generate_batch(20, &mut StdRng::seed_from_u64(9));
        assert_eq!(batch_a, batch_b);
        let mut ids: Vec<u64> = batch_a.iter().map(|t| t.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn operand_range_respected() {
        let mut gen = TaskGenerator::new(64).with_operand_range(3, 3);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            assert_eq!(gen.generate(&mut rng).operands.len(), 3);
        }
    }
}
