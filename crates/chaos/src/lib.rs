//! # tlt-chaos
//!
//! Deterministic fault injection for the whole TLT serving stack, with recovery
//! semantics and an invariant-checking harness.
//!
//! A [`Scenario`] scripts faults — replica crashes and restarts, stragglers,
//! training preemptions, corrupt/stale drafter checkpoints, arrival storms —
//! over a seeded serving workload. The [`runner`] plays the schedule through a
//! discrete-event simulation of the [`tlt_serve`] frontend, the [`tlt_coord`]
//! worker coordinator, and the [`tlt_draft`] checkpoint pipeline, and the
//! [`invariants`] harness proves the system-level guarantees hold under every
//! schedule: no request is ever lost or duplicated across a crash, KV budgets
//! are never exceeded, the coordinator never double-promotes or deadlocks,
//! speculative decoding stays bit-lossless through drafter swaps, and every run
//! is a pure function of its seed.
//!
//! ```
//! use tlt_chaos::{run_scenario, Scenario};
//!
//! let outcome = run_scenario(
//!     &Scenario::builder("crash-failover")
//!         .replicas(3)
//!         .arrivals(6.0, 5.0)
//!         .crash(2.0, 1)
//!         .build(),
//! );
//! assert!(outcome.invariants.passed());
//! assert_eq!(outcome.completed + outcome.dropped, outcome.arrivals);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod invariants;
pub mod runner;
pub mod scenario;

pub use invariants::{InvariantReport, InvariantViolation, INVARIANTS};
pub use runner::{
    run_disagg_matrix, run_disagg_scenario, run_pinned_matrix, run_scenario, ChaosOutcome,
    DisaggChaosOutcome, DrafterFaultStats,
};
pub use scenario::{
    disagg_matrix, pinned_matrix, DisaggScenario, DisaggScenarioBuilder, FaultEvent, FaultKind,
    Scenario, ScenarioBuilder,
};
