//! Acceptance-length modelling for speculative decoding.
//!
//! Two uses:
//!
//! * the **token-level** engine measures acceptance directly against the tiny model
//!   and records it into an [`AcceptanceProfile`] (`from_measured`);
//! * the **timing-level** simulations of the full-size models (Figures 13/14,
//!   Tables 1/2/4) need an analytic model of how per-position acceptance rates,
//!   draft depth, tree top-K and the verification budget combine into an expected
//!   accepted length per speculative step.

use serde::{Deserialize, Serialize};

/// Per-position acceptance probabilities of a drafter against its target: entry `i`
/// is the probability that the `(i+1)`-th drafted token is accepted, conditioned on
/// all earlier drafted tokens having been accepted (the quantity of Figure 16).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceptanceProfile {
    per_position: Vec<f64>,
}

impl AcceptanceProfile {
    /// Builds a profile from measured per-position acceptance rates.
    ///
    /// # Panics
    ///
    /// Panics if any rate is outside `[0, 1]` or the profile is empty.
    pub fn from_measured(rates: Vec<f64>) -> Self {
        assert!(!rates.is_empty(), "empty acceptance profile");
        for &r in &rates {
            assert!((0.0..=1.0).contains(&r), "acceptance rate {r} out of range");
        }
        AcceptanceProfile {
            per_position: rates,
        }
    }

    /// Parametric profile: `p_i = base * decay^i`, clamped to `[0, 1]`, for
    /// `max_depth` positions. `base` captures drafter quality at position 1 and
    /// `decay` the compounding error accumulation with depth.
    pub fn parametric(base: f64, decay: f64, max_depth: usize) -> Self {
        assert!(max_depth > 0, "profile needs at least one position");
        let rates = (0..max_depth)
            .map(|i| (base * decay.powi(i as i32)).clamp(0.0, 1.0))
            .collect();
        AcceptanceProfile {
            per_position: rates,
        }
    }

    /// Profile of a well-adapted EAGLE drafter (calibrated to the paper's measured
    /// accept lengths of ~6.5 at depth 6-8 with tree drafting).
    pub fn adaptive_drafter() -> Self {
        AcceptanceProfile::parametric(0.92, 0.965, 16)
    }

    /// Profile of a stale (non-adapted) drafter after the target has drifted through
    /// RL updates; its acceptance decays much faster with position (Figure 16).
    pub fn stale_drafter() -> Self {
        AcceptanceProfile::parametric(0.72, 0.80, 16)
    }

    /// Profile of the model-free n-gram drafter (lower per-position quality).
    pub fn model_free_drafter() -> Self {
        AcceptanceProfile::parametric(0.55, 0.85, 16)
    }

    /// Maximum depth this profile describes.
    pub fn max_depth(&self) -> usize {
        self.per_position.len()
    }

    /// Acceptance probability at drafted position `i` (0-based); positions beyond the
    /// profile reuse the last entry.
    pub fn rate_at(&self, i: usize) -> f64 {
        let idx = i.min(self.per_position.len() - 1);
        self.per_position[idx]
    }

    /// Scales every per-position rate by `factor` (clamped to `[0,1]`) — used to
    /// model staleness accumulating as the target model drifts between drafter
    /// updates, and recovery after adaptive training.
    pub fn scaled(&self, factor: f64) -> AcceptanceProfile {
        AcceptanceProfile {
            per_position: self
                .per_position
                .iter()
                .map(|&p| (p * factor).clamp(0.0, 1.0))
                .collect(),
        }
    }

    /// Expected accepted tokens per speculative step with *linear* (single-chain)
    /// drafting of `depth` tokens: `1 + sum_k prod_{i<=k} p_i` (the `+1` is the bonus
    /// token the target emits at the first mismatch position).
    pub fn expected_accept_len_linear(&self, depth: usize) -> f64 {
        let mut total = 1.0;
        let mut running = 1.0;
        for i in 0..depth {
            running *= self.rate_at(i);
            total += running;
        }
        total
    }

    /// Expected accepted tokens per speculative step with *tree* drafting:
    /// `top_k` branches per expansion, `depth` levels, and a total verification
    /// budget of `tokens_to_verify` tree nodes submitted to the target.
    ///
    /// Candidate slots are allocated level by level proportionally to the
    /// probability that the level is reached; multiple candidates at a level raise
    /// the effective acceptance with diminishing returns.
    pub fn expected_accept_len_tree(
        &self,
        depth: usize,
        top_k: usize,
        tokens_to_verify: usize,
    ) -> f64 {
        if depth == 0 || tokens_to_verify == 0 {
            return 1.0;
        }
        let top_k = top_k.max(1);
        // Reach probabilities under single-candidate acceptance, used to split the
        // verification budget across levels (levels more likely to be reached get a
        // proportionally larger share of the tree's nodes).
        let mut reach = Vec::with_capacity(depth);
        let mut running = 1.0;
        for i in 0..depth {
            reach.push(running);
            running *= self.rate_at(i);
        }
        let reach_sum: f64 = reach.iter().sum::<f64>().max(f64::EPSILON);
        // Candidates competing at each level along the accepted path: bounded below
        // by 1 (the chain always exists), above by the tree top-K, and by the level's
        // share of the verification budget.
        let mut total = 1.0;
        let mut running = 1.0;
        for (i, &reach_i) in reach.iter().enumerate() {
            let share = tokens_to_verify as f64 * reach_i / reach_sum;
            if share < 1.0 {
                break;
            }
            let candidates = share.clamp(1.0, top_k as f64);
            let p = self.rate_at(i);
            // Extra candidates are correlated with the top candidate, so their
            // marginal value diminishes (square-root law on the surplus).
            let exponent = 1.0 + 0.5 * (candidates - 1.0).max(0.0).sqrt();
            let p_eff = 1.0 - (1.0 - p).powf(exponent);
            running *= p_eff;
            total += running;
        }
        total
    }

    /// Mean acceptance rate across positions (a scalar drafter-quality summary).
    pub fn mean_rate(&self) -> f64 {
        self.per_position.iter().sum::<f64>() / self.per_position.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_accept_len_bounded_by_depth_plus_one() {
        let p = AcceptanceProfile::adaptive_drafter();
        for depth in [1, 4, 8, 16] {
            let len = p.expected_accept_len_linear(depth);
            assert!(len >= 1.0 && len <= depth as f64 + 1.0);
        }
    }

    #[test]
    fn perfect_drafter_accepts_everything() {
        let p = AcceptanceProfile::parametric(1.0, 1.0, 8);
        assert!((p.expected_accept_len_linear(8) - 9.0).abs() < 1e-9);
        assert!(p.expected_accept_len_tree(8, 2, 64) > 8.5);
    }

    #[test]
    fn useless_drafter_accepts_only_bonus_token() {
        let p = AcceptanceProfile::parametric(0.0, 1.0, 8);
        assert!((p.expected_accept_len_linear(8) - 1.0).abs() < 1e-9);
        assert!((p.expected_accept_len_tree(8, 4, 32) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accept_len_saturates_with_depth() {
        // Figure 13(a): increasing draft depth raises accept length with diminishing
        // returns.
        let p = AcceptanceProfile::adaptive_drafter();
        let l4 = p.expected_accept_len_tree(4, 8, 64);
        let l8 = p.expected_accept_len_tree(8, 8, 64);
        let l12 = p.expected_accept_len_tree(12, 8, 64);
        let l16 = p.expected_accept_len_tree(16, 8, 64);
        assert!(l8 > l4);
        assert!(l12 >= l8);
        assert!(l12 - l8 < l8 - l4, "gains must diminish");
        assert!(l16 - l12 < 1.0);
    }

    #[test]
    fn accept_len_grows_with_verification_budget() {
        let p = AcceptanceProfile::adaptive_drafter();
        let l16 = p.expected_accept_len_tree(10, 8, 16);
        let l64 = p.expected_accept_len_tree(10, 8, 64);
        assert!(l64 > l16);
    }

    #[test]
    fn accept_len_insensitive_to_large_topk() {
        // Table 1: topK beyond ~6 barely moves accept length.
        let p = AcceptanceProfile::adaptive_drafter();
        let l6 = p.expected_accept_len_tree(12, 6, 64);
        let l16 = p.expected_accept_len_tree(12, 16, 64);
        assert!(
            (l6 - l16).abs() < 0.8,
            "topK sensitivity too high: {l6} vs {l16}"
        );
    }

    #[test]
    fn tree_drafting_beats_linear_drafting() {
        let p = AcceptanceProfile::adaptive_drafter();
        let linear = p.expected_accept_len_linear(8);
        let tree = p.expected_accept_len_tree(8, 8, 64);
        assert!(tree > linear);
    }

    #[test]
    fn adaptive_profile_dominates_stale_profile() {
        // Figure 16: the adaptive drafter keeps a higher accept rate at every position.
        let adaptive = AcceptanceProfile::adaptive_drafter();
        let stale = AcceptanceProfile::stale_drafter();
        for i in 0..8 {
            assert!(adaptive.rate_at(i) > stale.rate_at(i));
        }
        assert!(
            adaptive.expected_accept_len_tree(8, 8, 48)
                > stale.expected_accept_len_tree(8, 8, 48) + 1.0
        );
    }

    #[test]
    fn calibrated_accept_length_matches_paper_range() {
        // The paper reports ~6.5 average accept length for the adapted EAGLE drafter
        // (Table 7) and ~8.3-8.7 for the depth-12/verify-64 grid (Table 1).
        let p = AcceptanceProfile::adaptive_drafter();
        let table7 = p.expected_accept_len_tree(6, 8, 48);
        assert!(
            (4.5..8.0).contains(&table7),
            "table7-style accept len {table7}"
        );
        let table1 = p.expected_accept_len_tree(12, 8, 64);
        assert!(
            (6.0..11.0).contains(&table1),
            "table1-style accept len {table1}"
        );
    }

    #[test]
    fn scaled_profile_clamps_and_reduces() {
        let p = AcceptanceProfile::adaptive_drafter();
        let s = p.scaled(0.5);
        assert!(s.mean_rate() < p.mean_rate());
        let boosted = p.scaled(2.0);
        assert!(boosted.per_position.iter().all(|&x| x <= 1.0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_measured_rates_panic() {
        let _ = AcceptanceProfile::from_measured(vec![0.5, 1.5]);
    }
}
