//! Deterministic-seeding guarantees: the whole stack is a pure function of its
//! seeds. Two runs with identical seeds must produce bit-identical outputs,
//! both at the timing level (`run_experiment`) and at the token level
//! (`speculative_generate`).

use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt::{run_experiment, ExperimentConfig, SystemKind};
use tlt_draft::{DraftModel, FeatureSource};
use tlt_gpusim::{ClusterConfig, GpuType};
use tlt_model::{ModelConfig, ModelSpec, SamplingParams, TinyLm};
use tlt_rollout::{speculative_generate, SdStrategy, SpecDrafter};

fn quick_config() -> ExperimentConfig {
    ExperimentConfig::paper_default(
        ModelSpec::qwen2_5_7b(),
        ClusterConfig::single_node(GpuType::H100, 2),
    )
    .scaled_down()
}

#[test]
fn run_experiment_is_deterministic_across_runs() {
    let config = quick_config();
    for system in [SystemKind::Verl, SystemKind::Tlt] {
        let first = run_experiment(system, &config);
        let second = run_experiment(system, &config);
        assert_eq!(
            first.throughput_tokens_per_s, second.throughput_tokens_per_s,
            "{system:?}: throughput must be identical for identical seeds"
        );
        let (a, b) = (first.mean_breakdown(), second.mean_breakdown());
        assert_eq!(a.rollout_s, b.rollout_s);
        assert_eq!(a.training_s, b.training_s);
        assert_eq!(
            first.drafter_updates_per_step,
            second.drafter_updates_per_step
        );
    }
}

#[test]
fn speculative_generate_is_deterministic_across_runs() {
    let target = TinyLm::new(ModelConfig::micro(), 42);
    let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 7);
    let prompt = [1u32, 4, 2, 8];
    let strategy = SdStrategy {
        draft_depth: 4,
        top_k: 1,
        tokens_to_verify: 4,
    };
    let run = |seed: u64, params: SamplingParams| {
        let mut rng = StdRng::seed_from_u64(seed);
        speculative_generate(
            &target,
            &SpecDrafter::Learned(&drafter),
            &prompt,
            32,
            strategy,
            params,
            None,
            &mut rng,
        )
    };
    // Identical seeds: identical token streams, greedy and sampled alike.
    for params in [SamplingParams::greedy(), SamplingParams::default()] {
        let first = run(3, params);
        let second = run(3, params);
        assert_eq!(first.tokens, second.tokens);
    }
}

#[test]
fn different_seeds_change_sampled_outputs() {
    // Sanity check that the determinism above is not vacuous (i.e. the rng is
    // actually consulted): sampled generation with different seeds diverges
    // for at least one of a handful of seed pairs.
    let target = TinyLm::new(ModelConfig::micro(), 42);
    let prompt = [1u32, 4, 2, 8];
    let mut diverged = false;
    for seed in 0..4u64 {
        let gen = |s: u64| {
            let mut rng = StdRng::seed_from_u64(s);
            tlt_rollout::vanilla_generate(
                &target,
                &prompt,
                32,
                SamplingParams::default(),
                None,
                &mut rng,
            )
        };
        if gen(seed).tokens != gen(seed + 100).tokens {
            diverged = true;
            break;
        }
    }
    assert!(diverged, "sampled generation never consulted the rng");
}
