//! Cluster topology and memory-feasibility modelling.
//!
//! The paper's testbed is 8 DGX-H100 nodes (64 GPUs) with NVLink inside a node and
//! InfiniBand across nodes. This module describes such clusters, derives the number
//! of rollout workers (one worker = one tensor-parallel model replica, matching the
//! paper's definition in §4.2), and estimates whether a colocated GRPO training job
//! fits in GPU memory — which is what produces the "OOM" entries of Table 3.

use crate::specs::{GpuSpec, GpuType};
use serde::{Deserialize, Serialize};
use std::fmt;
use tlt_model::spec::ModelSpec;

/// Bytes of training state per parameter for mixed-precision Adam
/// (BF16 weights + BF16 grads + FP32 master weights + FP32 moments).
pub const TRAIN_STATE_BYTES_PER_PARAM: f64 = 18.0;

/// Identifier of a rollout worker (one tensor-parallel replica).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct WorkerId(pub usize);

impl fmt::Display for WorkerId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "W{}", self.0)
    }
}

/// Static description of a GPU cluster.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of nodes.
    pub num_nodes: usize,
    /// GPUs per node (8 for DGX systems).
    pub gpus_per_node: usize,
    /// GPU type installed in every node.
    pub gpu_type: GpuType,
    /// Tensor-parallel degree of each rollout worker.
    pub tp: usize,
    /// Inter-node network bandwidth in GB/s (e.g. 50 GB/s for 400 Gb/s InfiniBand).
    pub internode_gbps: f64,
}

impl ClusterConfig {
    /// The paper's default testbed: 8 DGX-H100 nodes.
    pub fn dgx_h100_testbed() -> Self {
        ClusterConfig {
            num_nodes: 8,
            gpus_per_node: 8,
            gpu_type: GpuType::H100,
            tp: 4,
            internode_gbps: 50.0,
        }
    }

    /// A single node of the given GPU type.
    pub fn single_node(gpu_type: GpuType, tp: usize) -> Self {
        ClusterConfig {
            num_nodes: 1,
            gpus_per_node: 8,
            gpu_type,
            tp,
            internode_gbps: 50.0,
        }
    }

    /// Total GPU count.
    pub fn total_gpus(&self) -> usize {
        self.num_nodes * self.gpus_per_node
    }

    /// Number of rollout workers (tensor-parallel replicas).
    ///
    /// # Panics
    ///
    /// Panics if the TP degree does not divide the GPU count.
    pub fn num_workers(&self) -> usize {
        assert!(self.tp > 0, "tp must be positive");
        assert_eq!(
            self.total_gpus() % self.tp,
            0,
            "tp {} does not divide total gpus {}",
            self.tp,
            self.total_gpus()
        );
        self.total_gpus() / self.tp
    }

    /// Worker identifiers.
    pub fn worker_ids(&self) -> Vec<WorkerId> {
        (0..self.num_workers()).map(WorkerId).collect()
    }

    /// GPU specification of this cluster's GPUs.
    pub fn gpu_spec(&self) -> GpuSpec {
        self.gpu_type.spec()
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_nodes == 0 || self.gpus_per_node == 0 {
            return Err("cluster must have at least one node and one GPU".to_string());
        }
        if self.tp == 0 {
            return Err("tp must be positive".to_string());
        }
        if self.total_gpus() % self.tp != 0 {
            return Err(format!(
                "tp {} does not divide total gpus {}",
                self.tp,
                self.total_gpus()
            ));
        }
        Ok(())
    }

    /// Estimates per-GPU memory demand of a colocated GRPO job and checks it against
    /// the GPU's capacity.
    pub fn memory_estimate(
        &self,
        model: &ModelSpec,
        global_batch: usize,
        max_response_len: usize,
    ) -> MemoryEstimate {
        let gpus = self.total_gpus() as f64;
        let spec = self.gpu_spec();
        // Sharded training state (ZeRO-3 style).
        let train_state = model.params * TRAIN_STATE_BYTES_PER_PARAM / gpus;
        // Rollout engine weights resident on each TP group.
        let rollout_weights = model.weight_bytes() / self.tp as f64;
        // Worst-case KV working set of the rollout stage spread over all GPUs.
        let kv_working_set =
            global_batch as f64 * max_response_len as f64 * model.kv_bytes_per_token() / gpus;
        // Activation working set with checkpointing (scales with sqrt(layers)).
        let activations =
            max_response_len as f64 * model.hidden as f64 * (model.num_layers as f64).sqrt() * 4.0
                / self.tp as f64;
        let required = train_state + rollout_weights + kv_working_set + activations;
        MemoryEstimate {
            train_state_bytes: train_state,
            rollout_weight_bytes: rollout_weights,
            kv_bytes: kv_working_set,
            activation_bytes: activations,
            required_bytes: required,
            capacity_bytes: spec.memory_bytes() * 0.9,
        }
    }

    /// Whether a colocated GRPO job for `model` fits in memory on this cluster.
    pub fn fits(&self, model: &ModelSpec, global_batch: usize, max_response_len: usize) -> bool {
        let est = self.memory_estimate(model, global_batch, max_response_len);
        est.required_bytes <= est.capacity_bytes
    }
}

/// Per-GPU memory breakdown of a colocated RL training job.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryEstimate {
    /// Sharded optimizer/gradient/weight state for training.
    pub train_state_bytes: f64,
    /// Rollout-engine weights resident per GPU.
    pub rollout_weight_bytes: f64,
    /// KV-cache working set per GPU.
    pub kv_bytes: f64,
    /// Activation working set per GPU.
    pub activation_bytes: f64,
    /// Total required bytes per GPU.
    pub required_bytes: f64,
    /// Usable capacity per GPU (90% of HBM).
    pub capacity_bytes: f64,
}

impl MemoryEstimate {
    /// Required memory in GiB.
    pub fn required_gb(&self) -> f64 {
        self.required_bytes / (1024.0 * 1024.0 * 1024.0)
    }

    /// Whether the job fits.
    pub fn fits(&self) -> bool {
        self.required_bytes <= self.capacity_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_has_64_gpus_and_16_workers() {
        let c = ClusterConfig::dgx_h100_testbed();
        assert_eq!(c.total_gpus(), 64);
        assert_eq!(c.num_workers(), 16);
        assert_eq!(c.worker_ids().len(), 16);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn invalid_tp_detected() {
        let mut c = ClusterConfig::single_node(GpuType::H100, 3);
        assert!(c.validate().is_err());
        c.tp = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn qwen7b_fits_on_one_node() {
        let c = ClusterConfig::single_node(GpuType::H100, 2);
        assert!(c.fits(&ModelSpec::qwen2_5_7b(), 128, 32_768));
    }

    #[test]
    fn qwen32b_oom_below_four_nodes_as_in_table3() {
        let model = ModelSpec::qwen2_5_32b();
        let mk = |nodes| ClusterConfig {
            num_nodes: nodes,
            gpus_per_node: 8,
            gpu_type: GpuType::H100,
            tp: 8,
            internode_gbps: 50.0,
        };
        assert!(!mk(1).fits(&model, 128, 32_768), "1 node should OOM");
        assert!(!mk(2).fits(&model, 128, 32_768), "2 nodes should OOM");
        assert!(mk(4).fits(&model, 128, 32_768), "4 nodes should fit");
        assert!(mk(8).fits(&model, 128, 32_768), "8 nodes should fit");
    }

    #[test]
    fn memory_estimate_components_positive() {
        let c = ClusterConfig::dgx_h100_testbed();
        let est = c.memory_estimate(&ModelSpec::qwen2_5_32b(), 128, 32_768);
        assert!(est.train_state_bytes > 0.0);
        assert!(est.rollout_weight_bytes > 0.0);
        assert!(est.kv_bytes > 0.0);
        assert!(est.activation_bytes > 0.0);
        assert!(est.required_gb() > 1.0);
    }

    #[test]
    fn worker_id_display() {
        assert_eq!(WorkerId(3).to_string(), "W3");
    }
}
