//! Online serving with adaptive speculative decoding: drives the real `tlt-serve`
//! subsystem with a bursty open-loop arrival stream against two Qwen-7B / H100
//! replicas and compares three SD policies — never speculate, always speculate,
//! and the elastic adaptive manager that watches the live load.
//!
//! Run with `cargo run -p tlt --release --example adaptive_sd_serving`.

use tlt::{run_serving_comparison, ServingExperimentConfig, ServingSdPolicy};
use tlt_serve::ServeReport;

fn print_policy(policy: ServingSdPolicy, r: &ServeReport) {
    println!(
        "  {:<22} {:>7.0} tok/s | TTFT p50/p99 {:>6.0}/{:>6.0} ms | TPOT p99 {:>5.2} ms | \
         E2E p99 {:>5.2} s | goodput {:>5.2} req/s | SLO {:>5.1}% | SD steps {:>5.1}%",
        policy.name(),
        r.throughput_tokens_per_s,
        r.ttft.p50_s * 1e3,
        r.ttft.p99_s * 1e3,
        r.tpot.p99_s * 1e3,
        r.e2e.p99_s,
        r.goodput_rps,
        r.slo_attainment * 100.0,
        r.mean_sd_fraction() * 100.0,
    );
}

fn main() {
    for &rate in &[4.0f64, 12.0, 24.0] {
        let config = ServingExperimentConfig::qwen7b_bursty(2, rate);
        let n = config.arrivals().len();
        println!(
            "\n=== bursty load, mean {rate:.0} req/s ({n} requests over {:.0} s, {} replicas) ===",
            config.horizon_s, config.replicas
        );
        for (policy, report) in run_serving_comparison(&config) {
            print_policy(policy, &report);
        }
    }
    println!(
        "\nThe adaptive manager speculates while the replica batch is small (draining \
         bursts fast) and\nswitches SD off under backlog, so it tracks the best policy \
         at every load level — the paper's\nelastic-SD threshold turned into an online \
         serving policy."
    );

    // Per-replica view at the highest rate: utilisation and SD behaviour.
    let config = ServingExperimentConfig::qwen7b_bursty(2, 24.0);
    let report = tlt::run_serving(&config, ServingSdPolicy::Adaptive);
    println!("\nper-replica stats (adaptive SD, 24 req/s):");
    for r in &report.replicas {
        println!(
            "  replica {} | completed {:>4} | util {:>4.2} | SD steps {:>5.1}% | \
             mean accept len {:>4.2} | peak batch {:>3} | peak KV {:>7} tokens",
            r.replica,
            r.completed,
            r.utilization,
            r.sd_step_fraction * 100.0,
            r.mean_accept_length,
            r.peak_running,
            r.peak_kv_tokens,
        );
    }
}
