//! Selective asynchronous checkpointing of the draft model (§4.2).
//!
//! The spot trainer is preemptible: when rollout finishes, drafter training is halted
//! immediately, so frequent checkpoints are needed to avoid losing progress. The
//! paper's two optimisations are reproduced here:
//!
//! * **Asynchronous** — serialisation happens on a background thread; the training
//!   thread only pays for snapshotting the (small) trainable state.
//! * **Selective** — frozen tied weights (embedding, LM head) are filtered out and
//!   only the trainable fusion + decoder-layer parameters are written.
//!
//! Checkpoints are written into an in-memory byte store rather than the filesystem so
//! the behaviour is deterministic and testable; the blocking-time accounting is the
//! quantity compared in Figure 17(a).

use crate::model::DraftModel;
use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use tlt_model::{Mat, TinyLm};

/// Checkpointing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointMode {
    /// Serialise everything (drafter + tied frozen weights) on the calling thread.
    VanillaSync,
    /// Serialise everything, but on a background thread.
    Async,
    /// Serialise only the trainable drafter parameters, on a background thread.
    SelectiveAsync,
}

impl CheckpointMode {
    /// All modes, in the order of Figure 17(a).
    pub fn all() -> [CheckpointMode; 3] {
        [
            CheckpointMode::VanillaSync,
            CheckpointMode::Async,
            CheckpointMode::SelectiveAsync,
        ]
    }

    /// Display name matching the figure labels.
    pub fn name(&self) -> &'static str {
        match self {
            CheckpointMode::VanillaSync => "Vanilla Ckpt",
            CheckpointMode::Async => "Async Ckpt",
            CheckpointMode::SelectiveAsync => "Selective Async Ckpt",
        }
    }
}

/// Outcome of a checkpoint request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// Time the *training thread* was blocked, in microseconds.
    pub blocking_us: u64,
    /// Bytes written to the store.
    pub bytes_written: usize,
    /// Whether serialisation happened on a background thread.
    pub asynchronous: bool,
}

/// Serialises a matrix as little-endian f32s prefixed by its shape.
fn write_mat(buf: &mut BytesMut, mat: &Mat) {
    buf.extend_from_slice(&(mat.rows() as u64).to_le_bytes());
    buf.extend_from_slice(&(mat.cols() as u64).to_le_bytes());
    for &v in mat.as_slice() {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_mat(data: &[u8], offset: &mut usize) -> Mat {
    let rows = u64::from_le_bytes(data[*offset..*offset + 8].try_into().expect("shape")) as usize;
    let cols =
        u64::from_le_bytes(data[*offset + 8..*offset + 16].try_into().expect("shape")) as usize;
    *offset += 16;
    let mut values = Vec::with_capacity(rows * cols);
    for _ in 0..rows * cols {
        values.push(f32::from_le_bytes(
            data[*offset..*offset + 4].try_into().expect("value"),
        ));
        *offset += 4;
    }
    Mat::from_vec(rows, cols, values)
}

fn write_vec(buf: &mut BytesMut, values: &[f32]) {
    buf.extend_from_slice(&(values.len() as u64).to_le_bytes());
    for &v in values {
        buf.extend_from_slice(&v.to_le_bytes());
    }
}

fn read_vec(data: &[u8], offset: &mut usize) -> Vec<f32> {
    let len = u64::from_le_bytes(data[*offset..*offset + 8].try_into().expect("len")) as usize;
    *offset += 8;
    let mut values = Vec::with_capacity(len);
    for _ in 0..len {
        values.push(f32::from_le_bytes(
            data[*offset..*offset + 4].try_into().expect("value"),
        ));
        *offset += 4;
    }
    values
}

/// Serialises only the trainable drafter state.
pub fn serialize_trainable(drafter: &DraftModel) -> Bytes {
    let mut buf = BytesMut::new();
    buf.extend_from_slice(&drafter.version.to_le_bytes());
    write_mat(&mut buf, &drafter.fusion.weight);
    let layer = &drafter.layer;
    write_vec(&mut buf, &layer.attn_norm);
    write_mat(&mut buf, &layer.wq);
    write_mat(&mut buf, &layer.wk);
    write_mat(&mut buf, &layer.wv);
    write_mat(&mut buf, &layer.wo);
    write_vec(&mut buf, &layer.mlp_norm);
    write_mat(&mut buf, &layer.w_gate);
    write_mat(&mut buf, &layer.w_up);
    write_mat(&mut buf, &layer.w_down);
    buf.freeze()
}

/// Serialises the drafter plus the tied frozen weights of the target (what a
/// non-selective checkpoint of the drafter process would write).
pub fn serialize_full(drafter: &DraftModel, target: &TinyLm) -> Bytes {
    let mut buf = BytesMut::from(&serialize_trainable(drafter)[..]);
    let mut extra = BytesMut::new();
    write_mat(&mut extra, &target.embedding);
    write_mat(&mut extra, &target.lm_head);
    write_vec(&mut extra, &target.final_norm);
    buf.extend_from_slice(&extra);
    buf.freeze()
}

/// Restores the trainable drafter state from [`serialize_trainable`] output into an
/// existing drafter (shapes must match).
pub fn restore_trainable(drafter: &mut DraftModel, data: &[u8]) {
    let mut offset = 0usize;
    drafter.version = u64::from_le_bytes(data[0..8].try_into().expect("version"));
    offset += 8;
    drafter.fusion.weight = read_mat(data, &mut offset);
    drafter.layer.attn_norm = read_vec(data, &mut offset);
    drafter.layer.wq = read_mat(data, &mut offset);
    drafter.layer.wk = read_mat(data, &mut offset);
    drafter.layer.wv = read_mat(data, &mut offset);
    drafter.layer.wo = read_mat(data, &mut offset);
    drafter.layer.mlp_norm = read_vec(data, &mut offset);
    drafter.layer.w_gate = read_mat(data, &mut offset);
    drafter.layer.w_up = read_mat(data, &mut offset);
    drafter.layer.w_down = read_mat(data, &mut offset);
}

/// An in-memory checkpoint store shared with background serialisation threads.
#[derive(Debug, Default)]
pub struct CheckpointStore {
    latest: Arc<Mutex<Option<Bytes>>>,
    pending: Vec<JoinHandle<()>>,
}

impl CheckpointStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        CheckpointStore::default()
    }

    /// Latest completed checkpoint, if any (waits for background writes first).
    pub fn latest(&mut self) -> Option<Bytes> {
        self.wait_for_pending();
        self.latest.lock().clone()
    }

    /// Number of in-flight background writes.
    pub fn pending_writes(&self) -> usize {
        self.pending.len()
    }

    /// Blocks until all background writes have completed.
    pub fn wait_for_pending(&mut self) {
        for handle in self.pending.drain(..) {
            let _ = handle.join();
        }
    }

    /// Takes a checkpoint of `drafter` under `mode`, returning how long the calling
    /// (training) thread was blocked.
    pub fn checkpoint(
        &mut self,
        mode: CheckpointMode,
        drafter: &DraftModel,
        target: &TinyLm,
    ) -> CheckpointReport {
        let start = Instant::now();
        match mode {
            CheckpointMode::VanillaSync => {
                let data = serialize_full(drafter, target);
                let bytes_written = data.len();
                *self.latest.lock() = Some(data);
                CheckpointReport {
                    blocking_us: start.elapsed().as_micros() as u64,
                    bytes_written,
                    asynchronous: false,
                }
            }
            CheckpointMode::Async | CheckpointMode::SelectiveAsync => {
                // Blocking portion: clone the state the background thread needs.
                let drafter_snapshot = drafter.clone();
                let target_snapshot = if mode == CheckpointMode::Async {
                    Some(target.clone())
                } else {
                    None
                };
                let slot = Arc::clone(&self.latest);
                let blocking_us = start.elapsed().as_micros() as u64;
                let handle = std::thread::spawn(move || {
                    let data = match &target_snapshot {
                        Some(t) => serialize_full(&drafter_snapshot, t),
                        None => serialize_trainable(&drafter_snapshot),
                    };
                    *slot.lock() = Some(data);
                });
                self.pending.push(handle);
                let bytes_written = match mode {
                    CheckpointMode::Async => serialize_full(drafter, target).len(),
                    _ => serialize_trainable(drafter).len(),
                };
                CheckpointReport {
                    blocking_us,
                    bytes_written,
                    asynchronous: true,
                }
            }
        }
    }
}

impl Drop for CheckpointStore {
    fn drop(&mut self) {
        self.wait_for_pending();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::FeatureSource;
    use tlt_model::ModelConfig;

    fn setup() -> (TinyLm, DraftModel) {
        let target = TinyLm::new(ModelConfig::tiny(), 11);
        let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 1);
        (target, drafter)
    }

    #[test]
    fn trainable_roundtrip_restores_exactly() {
        let (target, mut drafter) = setup();
        drafter.version = 42;
        let data = serialize_trainable(&drafter);
        let mut restored = DraftModel::new(&target, FeatureSource::LastLayer, 99);
        restore_trainable(&mut restored, &data);
        assert_eq!(restored.version, 42);
        assert_eq!(restored.fusion.weight, drafter.fusion.weight);
        assert_eq!(restored.layer, drafter.layer);
    }

    #[test]
    fn selective_checkpoint_is_much_smaller_than_full() {
        let (target, drafter) = setup();
        let selective = serialize_trainable(&drafter).len();
        let full = serialize_full(&drafter, &target).len();
        // With the tiny substrate vocabulary the tied embedding/LM-head add ~50%
        // on top of the trainable state; with a real 150K-entry vocabulary the gap
        // is far larger (the paper reports a combined 9.2x checkpoint-latency win).
        assert!(
            full as f64 > 1.2 * selective as f64,
            "full {full} should exceed selective {selective}"
        );
    }

    #[test]
    fn async_modes_report_background_write() {
        let (target, drafter) = setup();
        let mut store = CheckpointStore::new();
        let sync = store.checkpoint(CheckpointMode::VanillaSync, &drafter, &target);
        assert!(!sync.asynchronous);
        let selective = store.checkpoint(CheckpointMode::SelectiveAsync, &drafter, &target);
        assert!(selective.asynchronous);
        assert!(selective.bytes_written < sync.bytes_written);
        store.wait_for_pending();
        assert!(store.latest().is_some());
    }

    #[test]
    fn latest_checkpoint_reflects_most_recent_write() {
        let (target, mut drafter) = setup();
        let mut store = CheckpointStore::new();
        drafter.version = 1;
        store.checkpoint(CheckpointMode::SelectiveAsync, &drafter, &target);
        drafter.version = 2;
        store.checkpoint(CheckpointMode::SelectiveAsync, &drafter, &target);
        let data = store.latest().expect("checkpoint present");
        let mut restored = DraftModel::new(&target, FeatureSource::LastLayer, 5);
        restore_trainable(&mut restored, &data);
        assert_eq!(restored.version, 2);
    }

    #[test]
    fn checkpoint_modes_have_names() {
        for mode in CheckpointMode::all() {
            assert!(!mode.name().is_empty());
        }
    }
}
