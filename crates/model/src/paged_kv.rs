//! Paged KV memory: a fixed-size block pool with reference counting and
//! copy-on-write, a paged per-sequence cache that is **bit-identical** in
//! attention output to the contiguous [`crate::kv_cache::LayerKvCache`], a
//! radix prefix index for cross-sequence KV reuse, and the block-granular
//! accounting ledger the serving layer admits against.
//!
//! The design follows PagedAttention: KV storage is carved into fixed-size
//! blocks (`block_size` positions spanning every layer), sequences hold block
//! tables instead of contiguous buffers, and identical prefixes share blocks.
//! A block is written in place only while exactly one reference holds it; the
//! first divergent append to a shared block copies the filled prefix rows into
//! a fresh block (copy-on-write). Attention walks the block table in position
//! order, so per-element accumulation order — and therefore every output bit —
//! matches the contiguous backend.
//!
//! Three cooperating pieces live here:
//!
//! * [`PagedKvPool`] + [`PagedKvCache`] — real token-level storage used by the
//!   tiny transformer through the [`crate::kv_cache::KvStore`] trait (via the
//!   [`PagedKv`] view).
//! * [`PrefixIndex`] — a radix tree over full blocks of token ids that matches
//!   an incoming prompt against resident blocks and returns
//!   `(shared_blocks, first_novel_position)` so prefill starts at the
//!   divergence point.
//! * [`BlockLedger`] — the unified KV *accounting* layer: block-count
//!   admission with partial-block rounding and shared prefix groups charged
//!   once, used by `tlt-serve` replicas and checked by the chaos harness.

use crate::kv_cache::KvStore;
use crate::tensor::Mat;
use crate::transformer::TokenId;

/// Identifier of one pool block.
pub type BlockId = u32;

/// Snapshot of a pool's (or ledger's) block accounting.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PoolStats {
    /// Positions per block.
    pub block_size: usize,
    /// Total blocks in the pool.
    pub capacity_blocks: usize,
    /// Blocks currently allocated (refcount > 0).
    pub in_use_blocks: usize,
    /// High-water mark of `in_use_blocks`.
    pub peak_in_use_blocks: usize,
    /// Copy-on-write block copies performed.
    pub cow_copies: u64,
}

impl PoolStats {
    /// Peak pool utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_blocks == 0 {
            0.0
        } else {
            self.peak_in_use_blocks as f64 / self.capacity_blocks as f64
        }
    }
}

/// Fixed-size block pool backing every paged KV cache of one model.
///
/// A block stores `block_size` positions of keys and values for **every**
/// layer, so one logical block id covers a position range across the whole
/// model — which is what makes prefix sharing a single refcount bump.
#[derive(Debug, Clone)]
pub struct PagedKvPool {
    block_size: usize,
    num_layers: usize,
    hidden: usize,
    keys: Vec<f32>,
    values: Vec<f32>,
    refcounts: Vec<u32>,
    free: Vec<BlockId>,
    in_use: usize,
    peak_in_use: usize,
    cow_copies: u64,
}

impl PagedKvPool {
    /// Creates a pool of `num_blocks` blocks for a model with `num_layers`
    /// layers of width `hidden`, each block holding `block_size` positions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(num_layers: usize, hidden: usize, block_size: usize, num_blocks: usize) -> Self {
        assert!(num_layers > 0, "pool needs at least one layer");
        assert!(hidden > 0, "pool needs a non-zero hidden width");
        assert!(block_size > 0, "block size must be non-zero");
        assert!(num_blocks > 0, "pool needs at least one block");
        let slots = num_blocks * num_layers * block_size * hidden;
        PagedKvPool {
            block_size,
            num_layers,
            hidden,
            keys: vec![0.0; slots],
            values: vec![0.0; slots],
            refcounts: vec![0; num_blocks],
            // LIFO free list initialised so blocks are first handed out in
            // ascending id order (deterministic, cache-friendly).
            free: (0..num_blocks as BlockId).rev().collect(),
            in_use: 0,
            peak_in_use: 0,
            cow_copies: 0,
        }
    }

    /// Pool sized for `capacity_positions` positions of the given model
    /// geometry (rounded up to whole blocks).
    pub fn with_position_capacity(
        num_layers: usize,
        hidden: usize,
        block_size: usize,
        capacity_positions: usize,
    ) -> Self {
        let blocks = capacity_positions.div_ceil(block_size).max(1);
        PagedKvPool::new(num_layers, hidden, block_size, blocks)
    }

    /// Positions per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of layers each block spans.
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Hidden width of each cached row.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Total blocks in the pool.
    pub fn capacity_blocks(&self) -> usize {
        self.refcounts.len()
    }

    /// Total positions the pool can hold — the capacity query budgeted callers
    /// reserve against instead of the model's full context window.
    pub fn capacity_positions(&self) -> usize {
        self.capacity_blocks() * self.block_size
    }

    /// Blocks currently free.
    pub fn free_blocks(&self) -> usize {
        self.free.len()
    }

    /// Blocks currently allocated.
    pub fn blocks_in_use(&self) -> usize {
        self.in_use
    }

    /// Accounting snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            block_size: self.block_size,
            capacity_blocks: self.capacity_blocks(),
            in_use_blocks: self.in_use,
            peak_in_use_blocks: self.peak_in_use,
            cow_copies: self.cow_copies,
        }
    }

    /// Current refcount of `block`.
    pub fn refcount(&self, block: BlockId) -> u32 {
        self.refcounts[block as usize]
    }

    /// Allocates a fresh block (refcount 1), or `None` when the pool is
    /// exhausted.
    pub fn alloc(&mut self) -> Option<BlockId> {
        let block = self.free.pop()?;
        debug_assert_eq!(self.refcounts[block as usize], 0);
        self.refcounts[block as usize] = 1;
        self.in_use += 1;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        Some(block)
    }

    /// Adds a reference to `block` (prefix sharing / sequence fork).
    pub fn retain(&mut self, block: BlockId) {
        assert!(
            self.refcounts[block as usize] > 0,
            "retain of a free block {block}"
        );
        self.refcounts[block as usize] += 1;
    }

    /// Drops a reference to `block`, returning it to the free list when the
    /// last reference goes away.
    pub fn release(&mut self, block: BlockId) {
        let rc = &mut self.refcounts[block as usize];
        assert!(*rc > 0, "release of a free block {block}");
        *rc -= 1;
        if *rc == 0 {
            self.free.push(block);
            self.in_use -= 1;
        }
    }

    #[inline]
    fn row_offset(&self, block: BlockId, layer: usize, row: usize) -> usize {
        debug_assert!(layer < self.num_layers && row < self.block_size);
        ((block as usize * self.num_layers + layer) * self.block_size + row) * self.hidden
    }

    /// Key row of `block` at (`layer`, `row`).
    #[inline]
    pub fn key_row(&self, block: BlockId, layer: usize, row: usize) -> &[f32] {
        let off = self.row_offset(block, layer, row);
        &self.keys[off..off + self.hidden]
    }

    /// Value row of `block` at (`layer`, `row`).
    #[inline]
    pub fn value_row(&self, block: BlockId, layer: usize, row: usize) -> &[f32] {
        let off = self.row_offset(block, layer, row);
        &self.values[off..off + self.hidden]
    }

    /// Writes one key/value row pair into `block` at (`layer`, `row`).
    #[inline]
    pub fn write_row(
        &mut self,
        block: BlockId,
        layer: usize,
        row: usize,
        key: &[f32],
        value: &[f32],
    ) {
        debug_assert_eq!(key.len(), self.hidden);
        debug_assert_eq!(value.len(), self.hidden);
        let off = self.row_offset(block, layer, row);
        self.keys[off..off + self.hidden].copy_from_slice(key);
        self.values[off..off + self.hidden].copy_from_slice(value);
    }

    /// Copy-on-write: allocates a fresh block and copies the first `rows`
    /// positions of `src` (across every layer) into it. The copied rows are
    /// bit-identical, so a CoW fork never perturbs attention output.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted.
    pub fn clone_block_prefix(&mut self, src: BlockId, rows: usize) -> BlockId {
        debug_assert!(rows <= self.block_size);
        let dst = self
            .alloc()
            .expect("paged KV pool exhausted during copy-on-write");
        for layer in 0..self.num_layers {
            let s = self.row_offset(src, layer, 0);
            let d = self.row_offset(dst, layer, 0);
            let n = rows * self.hidden;
            self.keys.copy_within(s..s + n, d);
            self.values.copy_within(s..s + n, d);
        }
        self.cow_copies += 1;
        dst
    }

    /// Imports `src_block` from another pool of identical geometry: allocates
    /// a fresh local block and copies every row of every layer bit-for-bit.
    /// Returns `None` when this pool is exhausted (nothing is allocated).
    pub fn import_block_from(&mut self, src: &PagedKvPool, src_block: BlockId) -> Option<BlockId> {
        assert!(
            self.block_size == src.block_size
                && self.num_layers == src.num_layers
                && self.hidden == src.hidden,
            "cross-pool import requires identical block geometry"
        );
        let dst = self.alloc()?;
        let n = self.num_layers * self.block_size * self.hidden;
        let s = src_block as usize * n;
        let d = dst as usize * n;
        self.keys[d..d + n].copy_from_slice(&src.keys[s..s + n]);
        self.values[d..d + n].copy_from_slice(&src.values[s..s + n]);
        Some(dst)
    }

    /// Structural conservation check: every block is either free (refcount 0,
    /// on the free list exactly once) or referenced; the free list and the
    /// in-use counter agree with the refcounts.
    pub fn check_conservation(&self) -> Result<(), String> {
        let mut on_free = vec![false; self.capacity_blocks()];
        for &b in &self.free {
            if on_free[b as usize] {
                return Err(format!("block {b} appears twice on the free list"));
            }
            on_free[b as usize] = true;
            if self.refcounts[b as usize] != 0 {
                return Err(format!(
                    "free-listed block {b} has refcount {}",
                    self.refcounts[b as usize]
                ));
            }
        }
        let mut referenced = 0usize;
        for (b, &rc) in self.refcounts.iter().enumerate() {
            if rc == 0 && !on_free[b] {
                return Err(format!("block {b} is neither referenced nor free"));
            }
            if rc > 0 {
                referenced += 1;
            }
        }
        if referenced != self.in_use {
            return Err(format!(
                "in-use counter {} disagrees with {} referenced blocks",
                self.in_use, referenced
            ));
        }
        if referenced + self.free.len() != self.capacity_blocks() {
            return Err("free + referenced blocks do not cover the pool".to_string());
        }
        Ok(())
    }
}

/// Per-sequence paged KV cache: a block table plus per-layer write lengths.
///
/// All storage lives in the [`PagedKvPool`]; pairing the two through the
/// [`PagedKv`] view yields a [`KvStore`] the model forwards through exactly
/// like the contiguous backend.
#[derive(Debug, Clone, Default)]
pub struct PagedKvCache {
    blocks: Vec<BlockId>,
    lens: Vec<usize>,
}

impl PagedKvCache {
    /// Creates an empty cache for a model with `num_layers` layers.
    pub fn new(num_layers: usize) -> Self {
        PagedKvCache {
            blocks: Vec::new(),
            lens: vec![0; num_layers],
        }
    }

    /// Builds a cache over blocks already retained on the caller's behalf
    /// (e.g. a [`PrefixIndex::lookup`] result) covering `len` positions.
    pub fn from_shared(
        blocks: Vec<BlockId>,
        len: usize,
        num_layers: usize,
        block_size: usize,
    ) -> Self {
        assert!(
            blocks.len() * block_size >= len,
            "shared blocks do not cover {len} positions"
        );
        PagedKvCache {
            blocks,
            lens: vec![len; num_layers],
        }
    }

    /// Cached positions (valid across every layer).
    pub fn seq_len(&self) -> usize {
        self.lens.iter().copied().min().unwrap_or(0)
    }

    /// The block table, in position order.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Blocks currently held by this sequence.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Forks the sequence: the clone shares every block (refcounts bumped);
    /// the first divergent append on either side copies on write.
    pub fn fork(&self, pool: &mut PagedKvPool) -> PagedKvCache {
        for &b in &self.blocks {
            pool.retain(b);
        }
        self.clone()
    }

    /// Releases every block back to the pool and empties the cache.
    pub fn release(&mut self, pool: &mut PagedKvPool) {
        for b in self.blocks.drain(..) {
            pool.release(b);
        }
        for l in &mut self.lens {
            *l = 0;
        }
    }

    /// Appends `keys`/`values` rows for `layer`. Layer 0 drives block
    /// allocation and copy-on-write; later layers write into the same blocks.
    ///
    /// # Panics
    ///
    /// Panics if the pool is exhausted.
    pub fn append_rows(&mut self, pool: &mut PagedKvPool, layer: usize, keys: &Mat, values: &Mat) {
        let n = keys.rows();
        debug_assert_eq!(values.rows(), n);
        let bs = pool.block_size();
        let start = self.lens[layer];
        let end = start + n;
        if layer == 0 {
            // `start` positions are valid across every layer here: layer 0 is
            // always the first writer of a new position range.
            let filled = start;
            if filled % bs != 0 {
                let b = filled / bs;
                if pool.refcount(self.blocks[b]) > 1 {
                    // First divergent append into a shared partial block:
                    // copy the filled prefix rows (all layers) and swap in the
                    // private copy.
                    let fresh = pool.clone_block_prefix(self.blocks[b], filled % bs);
                    pool.release(self.blocks[b]);
                    self.blocks[b] = fresh;
                }
            }
            let needed = end.div_ceil(bs);
            while self.blocks.len() < needed {
                self.blocks
                    .push(pool.alloc().expect("paged KV pool exhausted"));
            }
        } else {
            debug_assert!(self.blocks.len() * bs >= end, "layer 0 must append first");
        }
        for i in 0..n {
            let pos = start + i;
            pool.write_row(
                self.blocks[pos / bs],
                layer,
                pos % bs,
                keys.row(i),
                values.row(i),
            );
        }
        self.lens[layer] = end;
    }

    /// Rolls the sequence back to `new_len` positions, releasing any block
    /// that no longer holds a live position. A no-op when `new_len` is not
    /// shorter. Shared blocks keep their other references untouched — the
    /// next append past the boundary copies on write.
    pub fn truncate(&mut self, pool: &mut PagedKvPool, new_len: usize) {
        if new_len >= self.seq_len() {
            return;
        }
        debug_assert!(
            self.lens.iter().all(|&l| l == self.lens[0]),
            "truncate between forward passes only"
        );
        let bs = pool.block_size();
        let keep = new_len.div_ceil(bs);
        for b in self.blocks.drain(keep..) {
            pool.release(b);
        }
        for l in &mut self.lens {
            *l = new_len;
        }
    }

    /// The full blocks of this sequence (for [`PrefixIndex::insert`]).
    pub fn full_blocks(&self, block_size: usize) -> &[BlockId] {
        &self.blocks[..self.seq_len() / block_size]
    }

    /// Migrates the whole sequence from `src` into `dst` (two pools of
    /// identical geometry): every block — shared prefix blocks included — is
    /// deep-copied into a freshly allocated private `dst` block, then the
    /// `src` references are dropped. Attention over the migrated cache is
    /// bit-identical; refcount conservation holds in both pools (the copy is
    /// all-or-nothing: on `dst` exhaustion the partial allocation is rolled
    /// back and the cache stays resident in `src`).
    pub fn migrate(&mut self, src: &mut PagedKvPool, dst: &mut PagedKvPool) -> Result<(), String> {
        let mut imported = Vec::with_capacity(self.blocks.len());
        for &b in &self.blocks {
            match dst.import_block_from(src, b) {
                Some(nb) => imported.push(nb),
                None => {
                    let copied = imported.len();
                    for nb in imported {
                        dst.release(nb);
                    }
                    return Err(format!(
                        "destination pool exhausted after {copied} of {} blocks",
                        self.blocks.len()
                    ));
                }
            }
        }
        for b in self.blocks.drain(..) {
            src.release(b);
        }
        self.blocks = imported;
        Ok(())
    }
}

/// Mutable pool + cache pairing that implements [`KvStore`] for the model's
/// forward passes.
#[derive(Debug)]
pub struct PagedKv<'a> {
    /// The shared block pool.
    pub pool: &'a mut PagedKvPool,
    /// The sequence's block table.
    pub cache: &'a mut PagedKvCache,
}

impl KvStore for PagedKv<'_> {
    fn kv_seq_len(&self) -> usize {
        self.cache.seq_len()
    }

    fn kv_len(&self, layer: usize) -> usize {
        self.cache.lens[layer]
    }

    fn kv_append(&mut self, layer: usize, keys: &Mat, values: &Mat) {
        self.cache.append_rows(self.pool, layer, keys, values);
    }

    #[inline]
    fn kv_key(&self, layer: usize, idx: usize) -> &[f32] {
        let bs = self.pool.block_size();
        self.pool
            .key_row(self.cache.blocks[idx / bs], layer, idx % bs)
    }

    #[inline]
    fn kv_value(&self, layer: usize, idx: usize) -> &[f32] {
        let bs = self.pool.block_size();
        self.pool
            .value_row(self.cache.blocks[idx / bs], layer, idx % bs)
    }

    fn kv_truncate(&mut self, new_len: usize) {
        self.cache.truncate(self.pool, new_len);
    }
}

/// One edge of the radix tree: a full block of token ids and the pool block
/// holding its KV.
#[derive(Debug, Clone)]
struct PrefixEdge {
    tokens: Vec<TokenId>,
    block: BlockId,
    child: PrefixNode,
}

#[derive(Debug, Clone, Default)]
struct PrefixNode {
    children: Vec<PrefixEdge>,
}

/// Radix tree over full KV blocks, keyed by their token content.
///
/// Resident blocks carry one index-owned reference, so they are never written
/// in place (any divergent append copies on write) and survive the sequences
/// that created them. [`PrefixIndex::lookup`] matches an incoming prompt
/// block-by-block and hands back retained shared blocks plus the first novel
/// position, so prefill starts at the divergence point.
#[derive(Debug, Clone)]
pub struct PrefixIndex {
    block_size: usize,
    root: PrefixNode,
    resident_blocks: usize,
    lookups: u64,
    hits: u64,
    hit_tokens: u64,
    lookup_tokens: u64,
}

impl PrefixIndex {
    /// Creates an empty index over blocks of `block_size` tokens.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        PrefixIndex {
            block_size,
            root: PrefixNode::default(),
            resident_blocks: 0,
            lookups: 0,
            hits: 0,
            hit_tokens: 0,
            lookup_tokens: 0,
        }
    }

    /// Blocks the index currently keeps resident.
    pub fn resident_blocks(&self) -> usize {
        self.resident_blocks
    }

    /// Fraction of looked-up prompt tokens served from resident blocks.
    pub fn hit_rate(&self) -> f64 {
        if self.lookup_tokens == 0 {
            0.0
        } else {
            self.hit_tokens as f64 / self.lookup_tokens as f64
        }
    }

    /// `(lookups, lookups with at least one matched block)`.
    pub fn lookup_counts(&self) -> (u64, u64) {
        (self.lookups, self.hits)
    }

    /// Indexes the full blocks of a sequence: `blocks[i]` must hold the KV of
    /// `tokens[i * block_size .. (i + 1) * block_size]`. Newly indexed blocks
    /// are retained (the index owns one reference); chunks already present
    /// keep their existing block.
    pub fn insert(&mut self, pool: &mut PagedKvPool, tokens: &[TokenId], blocks: &[BlockId]) {
        let full = (tokens.len() / self.block_size).min(blocks.len());
        let mut node = &mut self.root;
        for (i, &block) in blocks.iter().enumerate().take(full) {
            let chunk = &tokens[i * self.block_size..(i + 1) * self.block_size];
            let pos = node.children.iter().position(|e| e.tokens == chunk);
            let idx = match pos {
                Some(idx) => idx,
                None => {
                    pool.retain(block);
                    self.resident_blocks += 1;
                    node.children.push(PrefixEdge {
                        tokens: chunk.to_vec(),
                        block,
                        child: PrefixNode::default(),
                    });
                    node.children.len() - 1
                }
            };
            node = &mut node.children[idx].child;
        }
    }

    /// Matches `tokens` against resident blocks. Returns the matched blocks —
    /// each retained on the caller's behalf — and the first novel position
    /// (`matched_blocks * block_size`).
    pub fn lookup(&mut self, pool: &mut PagedKvPool, tokens: &[TokenId]) -> (Vec<BlockId>, usize) {
        self.lookup_capped(pool, tokens, usize::MAX)
    }

    /// [`PrefixIndex::lookup`] matching at most `max_reuse_tokens` worth of
    /// full blocks (callers that must leave a suffix novel — e.g. the final
    /// prompt token that produces the first logits — cap here, so the hit
    /// statistics count exactly the blocks actually reused).
    pub fn lookup_capped(
        &mut self,
        pool: &mut PagedKvPool,
        tokens: &[TokenId],
        max_reuse_tokens: usize,
    ) -> (Vec<BlockId>, usize) {
        self.lookups += 1;
        self.lookup_tokens += tokens.len() as u64;
        let mut matched = Vec::new();
        let mut node = &self.root;
        let full = (tokens.len() / self.block_size).min(max_reuse_tokens / self.block_size);
        for i in 0..full {
            let chunk = &tokens[i * self.block_size..(i + 1) * self.block_size];
            match node.children.iter().find(|e| e.tokens == chunk) {
                Some(edge) => {
                    pool.retain(edge.block);
                    matched.push(edge.block);
                    node = &edge.child;
                }
                None => break,
            }
        }
        if !matched.is_empty() {
            self.hits += 1;
            self.hit_tokens += (matched.len() * self.block_size) as u64;
        }
        let first_novel = matched.len() * self.block_size;
        (matched, first_novel)
    }

    /// Releases every resident block back to the pool and empties the index.
    pub fn release_all(&mut self, pool: &mut PagedKvPool) {
        fn drop_node(node: &mut PrefixNode, pool: &mut PagedKvPool) {
            for mut edge in node.children.drain(..) {
                pool.release(edge.block);
                drop_node(&mut edge.child, pool);
            }
        }
        drop_node(&mut self.root, pool);
        self.resident_blocks = 0;
    }
}

/// One shared-prefix group tracked by a [`BlockLedger`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedGroup {
    /// Caller-assigned prefix identifier.
    pub id: u64,
    /// Full blocks the resident prefix occupies.
    pub blocks: usize,
    /// Running requests currently referencing the prefix.
    pub refs: usize,
}

/// Block-granular KV accounting: the unified layer both the serving replicas
/// (which simulate KV by token counts) and the chaos invariants reason over.
///
/// Private footprints are rounded up to whole blocks; shared prefix groups
/// are charged once no matter how many running requests reference them, and
/// stay resident after their last reference drops (a prefix cache) until
/// [`BlockLedger::evict_unreferenced`] reclaims them under pressure or a
/// crash [`BlockLedger::reset`]s the pool.
#[derive(Debug, Clone)]
pub struct BlockLedger {
    block_size: usize,
    capacity_blocks: usize,
    private_blocks: usize,
    shared: Vec<SharedGroup>,
    inbound_blocks: usize,
    outbound_blocks: usize,
    peak_in_use: usize,
    evicted_groups: u64,
}

impl BlockLedger {
    /// Creates a ledger over `capacity_blocks` blocks of `block_size` tokens.
    pub fn new(block_size: usize, capacity_blocks: usize) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        BlockLedger {
            block_size,
            capacity_blocks,
            private_blocks: 0,
            shared: Vec::new(),
            inbound_blocks: 0,
            outbound_blocks: 0,
            peak_in_use: 0,
            evicted_groups: 0,
        }
    }

    /// Tokens per block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Total blocks the ledger admits against.
    pub fn capacity_blocks(&self) -> usize {
        self.capacity_blocks
    }

    /// Blocks needed for `tokens` tokens (partial-block rounding).
    pub fn blocks_for(&self, tokens: usize) -> usize {
        tokens.div_ceil(self.block_size)
    }

    /// Blocks held by resident shared groups.
    pub fn shared_blocks(&self) -> usize {
        self.shared.iter().map(|g| g.blocks).sum()
    }

    /// Blocks reserved for migrations still in flight toward this pool.
    pub fn inbound_blocks(&self) -> usize {
        self.inbound_blocks
    }

    /// Blocks still charged here for migrations in flight away from this pool.
    pub fn outbound_blocks(&self) -> usize {
        self.outbound_blocks
    }

    /// Blocks charged right now (private + resident shared + both migration
    /// directions). In-flight inbound reservations count as used so admission
    /// can never hand out blocks a landing transfer already owns.
    pub fn in_use_blocks(&self) -> usize {
        self.private_blocks + self.shared_blocks() + self.inbound_blocks + self.outbound_blocks
    }

    /// Reserves `blocks` for a migration in flight toward this pool. The
    /// reservation is charged immediately — admission sees it as used — so a
    /// transfer landing mid-step can never over-commit the pool.
    pub fn reserve_inbound(&mut self, blocks: usize) {
        self.inbound_blocks += blocks;
        self.touch_peak();
    }

    /// Converts an inbound reservation into real usage: the transfer landed
    /// and its entry now counts in the caller's private footprint (the caller
    /// must follow up with [`BlockLedger::sync_private`]).
    pub fn commit_inbound(&mut self, blocks: usize) {
        assert!(
            self.inbound_blocks >= blocks,
            "inbound commit of {blocks} blocks exceeds {} reserved",
            self.inbound_blocks
        );
        self.inbound_blocks -= blocks;
    }

    /// Drops an inbound reservation without landing it (transfer aborted).
    pub fn cancel_inbound(&mut self, blocks: usize) {
        assert!(
            self.inbound_blocks >= blocks,
            "inbound cancel of {blocks} blocks exceeds {} reserved",
            self.inbound_blocks
        );
        self.inbound_blocks -= blocks;
    }

    /// Keeps `blocks` charged here while their sequence is in flight away from
    /// this pool (the entry has left the running set, so `sync_private` no
    /// longer covers it, but the storage is not free until the transfer lands).
    pub fn begin_outbound(&mut self, blocks: usize) {
        self.outbound_blocks += blocks;
        self.touch_peak();
    }

    /// Releases an outbound charge: the transfer landed remotely (or was
    /// aborted and its entry re-queued), so the source-side blocks are free.
    pub fn complete_outbound(&mut self, blocks: usize) {
        assert!(
            self.outbound_blocks >= blocks,
            "outbound completion of {blocks} blocks exceeds {} charged",
            self.outbound_blocks
        );
        self.outbound_blocks -= blocks;
    }

    /// Blocks still free.
    pub fn free_blocks(&self) -> usize {
        self.capacity_blocks.saturating_sub(self.in_use_blocks())
    }

    /// High-water mark of charged blocks.
    pub fn peak_in_use_blocks(&self) -> usize {
        self.peak_in_use
    }

    /// Resident shared groups evicted so far.
    pub fn evicted_groups(&self) -> u64 {
        self.evicted_groups
    }

    /// Whether prefix `id` is resident (its blocks already charged).
    pub fn is_resident(&self, id: u64) -> bool {
        self.shared.iter().any(|g| g.id == id)
    }

    /// Blocks of prefix `id` currently resident (0 when absent). Only this
    /// many blocks of a request's prefix hold materialised KV — a request
    /// whose clamped prefix is longer must compute (and charge) the rest.
    pub fn resident_blocks_of(&self, id: u64) -> usize {
        self.shared
            .iter()
            .find(|g| g.id == id)
            .map_or(0, |g| g.blocks)
    }

    /// The resident shared groups.
    pub fn shared_groups(&self) -> &[SharedGroup] {
        &self.shared
    }

    /// References a shared prefix of `blocks` full blocks and bumps its
    /// refcount. Blocks beyond the currently resident count are newly charged
    /// (a longer clamped prefix grows the group — its admitter computes that
    /// KV in its own prefill). Returns how many of the requested blocks were
    /// already resident: only that portion's KV can be reused.
    pub fn admit_shared(&mut self, id: u64, blocks: usize) -> usize {
        if let Some(g) = self.shared.iter_mut().find(|g| g.id == id) {
            let reused = blocks.min(g.blocks);
            g.blocks = g.blocks.max(blocks);
            g.refs += 1;
            self.touch_peak();
            reused
        } else {
            self.shared.push(SharedGroup {
                id,
                blocks,
                refs: 1,
            });
            self.touch_peak();
            0
        }
    }

    /// Drops one reference to prefix `id`; the blocks stay resident for
    /// future hits.
    pub fn release_shared(&mut self, id: u64) {
        let g = self
            .shared
            .iter_mut()
            .find(|g| g.id == id)
            .expect("release of an unknown shared prefix");
        assert!(g.refs > 0, "shared prefix {id} released below zero");
        g.refs -= 1;
    }

    /// Evicts every resident group no running request references, returning
    /// the number of blocks freed (prefix-cache reclamation under pressure).
    pub fn evict_unreferenced(&mut self) -> usize {
        self.evict_unreferenced_except(None)
    }

    /// [`BlockLedger::evict_unreferenced`] sparing the group `keep` — used
    /// when reclaiming under admission pressure so the very prefix the
    /// incoming request wants to reuse is not wiped for zero net headroom.
    pub fn evict_unreferenced_except(&mut self, keep: Option<u64>) -> usize {
        let before = self.shared_blocks();
        let evicted = self
            .shared
            .iter()
            .filter(|g| g.refs == 0 && Some(g.id) != keep)
            .count() as u64;
        self.shared.retain(|g| g.refs > 0 || Some(g.id) == keep);
        self.evicted_groups += evicted;
        before - self.shared_blocks()
    }

    /// Blocks that would remain charged after evicting every unreferenced
    /// group — the leak detector the chaos harness asserts is zero after a
    /// full drain (with `sync_private(0)`).
    pub fn leaked_blocks(&self) -> usize {
        self.private_blocks
            + self.inbound_blocks
            + self.outbound_blocks
            + self
                .shared
                .iter()
                .filter(|g| g.refs > 0)
                .map(|g| g.blocks)
                .sum::<usize>()
    }

    /// Updates the private (per-request, unshared) block count to the
    /// caller's recomputed footprint and refreshes the peak.
    pub fn sync_private(&mut self, blocks: usize) {
        self.private_blocks = blocks;
        self.touch_peak();
    }

    fn touch_peak(&mut self) {
        self.peak_in_use = self.peak_in_use.max(self.in_use_blocks());
    }

    /// Frees everything (replica crash wipes the pool, resident prefixes
    /// included). The peak survives for accounting.
    pub fn reset(&mut self) {
        self.private_blocks = 0;
        self.shared.clear();
        self.inbound_blocks = 0;
        self.outbound_blocks = 0;
    }

    /// Peak pool utilisation in `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.capacity_blocks == 0 {
            0.0
        } else {
            self.peak_in_use as f64 / self.capacity_blocks as f64
        }
    }

    /// Accounting snapshot in the shared [`PoolStats`] shape.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            block_size: self.block_size,
            capacity_blocks: self.capacity_blocks,
            in_use_blocks: self.in_use_blocks(),
            peak_in_use_blocks: self.peak_in_use,
            cow_copies: 0,
        }
    }

    /// Conservation check: charges stay within capacity, every group holds at
    /// least one block, no duplicate prefix ids, refcounts are coherent with
    /// `expected_refs` (total shared references held by running requests).
    pub fn check_conservation(&self, expected_refs: usize) -> Result<(), String> {
        for (i, g) in self.shared.iter().enumerate() {
            if g.blocks == 0 {
                return Err(format!("shared prefix {} holds zero blocks", g.id));
            }
            if self.shared[..i].iter().any(|o| o.id == g.id) {
                return Err(format!("shared prefix {} tracked twice", g.id));
            }
        }
        let refs: usize = self.shared.iter().map(|g| g.refs).sum();
        if refs != expected_refs {
            return Err(format!(
                "shared refcounts sum to {refs}, expected {expected_refs}"
            ));
        }
        if self.in_use_blocks() > self.capacity_blocks {
            return Err(format!(
                "{} blocks charged against a {}-block pool",
                self.in_use_blocks(),
                self.capacity_blocks
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> PagedKvPool {
        PagedKvPool::new(2, 4, 4, 8)
    }

    fn rows(n: usize, base: f32) -> Mat {
        let mut m = Mat::zeros(n, 4);
        for r in 0..n {
            for c in 0..4 {
                m.set(r, c, base + r as f32 + c as f32 * 0.25);
            }
        }
        m
    }

    #[test]
    fn alloc_release_roundtrip_conserves_blocks() {
        let mut p = pool();
        assert_eq!(p.free_blocks(), 8);
        let a = p.alloc().unwrap();
        let b = p.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(p.blocks_in_use(), 2);
        p.retain(a);
        p.release(a);
        assert_eq!(p.blocks_in_use(), 2, "refcounted block stays allocated");
        p.release(a);
        p.release(b);
        assert_eq!(p.blocks_in_use(), 0);
        assert_eq!(p.free_blocks(), 8);
        assert!(p.check_conservation().is_ok());
        assert_eq!(p.stats().peak_in_use_blocks, 2);
    }

    #[test]
    fn append_read_back_and_truncate() {
        let mut p = pool();
        let mut c = PagedKvCache::new(2);
        for layer in 0..2 {
            c.append_rows(&mut p, layer, &rows(6, 10.0 * layer as f32), &rows(6, 50.0));
        }
        assert_eq!(c.seq_len(), 6);
        assert_eq!(c.num_blocks(), 2);
        let kv = PagedKv {
            pool: &mut p,
            cache: &mut c,
        };
        assert_eq!(kv.kv_key(1, 5), rows(6, 10.0).row(5));
        assert_eq!(kv.kv_value(0, 0), rows(6, 50.0).row(0));
        c.truncate(&mut p, 3);
        assert_eq!(c.seq_len(), 3);
        assert_eq!(c.num_blocks(), 1, "second block released");
        c.release(&mut p);
        assert_eq!(p.blocks_in_use(), 0);
        assert!(p.check_conservation().is_ok());
    }

    #[test]
    fn fork_shares_blocks_and_cow_isolates_divergence() {
        let mut p = pool();
        let mut base = PagedKvCache::new(2);
        for layer in 0..2 {
            base.append_rows(&mut p, layer, &rows(6, 1.0), &rows(6, 2.0));
        }
        let mut fork = base.fork(&mut p);
        assert_eq!(p.blocks_in_use(), 2, "fork allocates nothing");
        assert_eq!(p.refcount(base.blocks()[0]), 2);

        // Divergent append on the fork: the shared partial block is CoW'd.
        for layer in 0..2 {
            fork.append_rows(&mut p, layer, &rows(1, 100.0), &rows(1, 200.0));
        }
        assert_eq!(p.stats().cow_copies, 1);
        assert_ne!(base.blocks()[1], fork.blocks()[1]);
        assert_eq!(
            base.blocks()[0],
            fork.blocks()[0],
            "full block still shared"
        );
        // The base's row 5 is untouched by the fork's append.
        let kv = PagedKv {
            pool: &mut p,
            cache: &mut base,
        };
        assert_eq!(kv.kv_key(0, 5), rows(6, 1.0).row(5));
        let kv = PagedKv {
            pool: &mut p,
            cache: &mut fork,
        };
        assert_eq!(kv.kv_key(0, 6), rows(1, 100.0).row(0));
        base.release(&mut p);
        fork.release(&mut p);
        assert_eq!(p.blocks_in_use(), 0);
    }

    #[test]
    fn prefix_index_matches_and_reports_first_novel_position() {
        let mut p = pool();
        let mut c = PagedKvCache::new(2);
        let tokens: Vec<TokenId> = (0..10).collect();
        for layer in 0..2 {
            c.append_rows(&mut p, layer, &rows(10, 1.0), &rows(10, 2.0));
        }
        let mut index = PrefixIndex::new(4);
        index.insert(&mut p, &tokens, c.full_blocks(4));
        assert_eq!(index.resident_blocks(), 2);

        // Same first block, divergent second block.
        let probe: Vec<TokenId> = vec![0, 1, 2, 3, 99, 98, 97, 96, 5];
        let (blocks, novel) = index.lookup(&mut p, &probe);
        assert_eq!(blocks.len(), 1);
        assert_eq!(novel, 4);
        assert_eq!(blocks[0], c.blocks()[0]);
        for b in blocks {
            p.release(b);
        }
        // Full match of the indexed prefix.
        let (blocks, novel) = index.lookup(&mut p, &tokens);
        assert_eq!(novel, 8);
        assert_eq!(blocks.len(), 2);
        for b in blocks {
            p.release(b);
        }
        // No match at all.
        let (blocks, novel) = index.lookup(&mut p, &[42, 42, 42, 42]);
        assert!(blocks.is_empty());
        assert_eq!(novel, 0);
        assert!(index.hit_rate() > 0.0);

        c.release(&mut p);
        assert_eq!(p.blocks_in_use(), 2, "index keeps its blocks resident");
        index.release_all(&mut p);
        assert_eq!(p.blocks_in_use(), 0);
        assert!(p.check_conservation().is_ok());
    }

    #[test]
    fn indexed_blocks_are_never_mutated_in_place() {
        let mut p = pool();
        let mut c = PagedKvCache::new(2);
        for layer in 0..2 {
            c.append_rows(&mut p, layer, &rows(6, 1.0), &rows(6, 2.0));
        }
        let tokens: Vec<TokenId> = (0..6).collect();
        let mut index = PrefixIndex::new(4);
        index.insert(&mut p, &tokens, c.full_blocks(4));
        // Roll the owner back into the indexed block, then append divergent
        // rows: the resident block must be CoW'd, not overwritten.
        c.truncate(&mut p, 2);
        let shared = index.lookup(&mut p, &tokens).0;
        for layer in 0..2 {
            c.append_rows(&mut p, layer, &rows(1, 77.0), &rows(1, 88.0));
        }
        assert!(p.stats().cow_copies >= 1);
        assert_eq!(p.key_row(shared[0], 0, 2), rows(6, 1.0).row(2));
        for b in shared {
            p.release(b);
        }
        c.release(&mut p);
        index.release_all(&mut p);
        assert_eq!(p.blocks_in_use(), 0);
    }

    #[test]
    fn ledger_charges_shared_blocks_once_and_detects_leaks() {
        let mut l = BlockLedger::new(16, 64);
        assert_eq!(l.blocks_for(0), 0);
        assert_eq!(l.blocks_for(1), 1);
        assert_eq!(l.blocks_for(16), 1);
        assert_eq!(l.blocks_for(17), 2);

        assert_eq!(l.admit_shared(1, 8), 0, "first use materialises the prefix");
        assert_eq!(l.admit_shared(1, 8), 8, "second use reuses every block");
        assert_eq!(l.shared_blocks(), 8, "charged once");
        l.sync_private(10);
        assert_eq!(l.in_use_blocks(), 18);
        assert_eq!(l.free_blocks(), 46);
        assert!(l.check_conservation(2).is_ok());
        assert!(l.check_conservation(1).is_err());

        // A longer clamped prefix grows the group: only the resident part is
        // reusable, the extension is newly charged.
        assert_eq!(l.admit_shared(1, 12), 8, "8 of 12 blocks reusable");
        assert_eq!(l.shared_blocks(), 12, "group grew by the 4 new blocks");
        assert_eq!(l.resident_blocks_of(1), 12);
        // A shorter prefix reuses entirely and never shrinks the group.
        assert_eq!(l.admit_shared(1, 4), 4);
        assert_eq!(l.shared_blocks(), 12);
        l.release_shared(1);
        l.release_shared(1);
        l.release_shared(1);
        l.release_shared(1);
        l.sync_private(0);
        assert_eq!(l.leaked_blocks(), 0, "unreferenced residents are not leaks");
        assert_eq!(l.in_use_blocks(), 12, "prefix stays resident for reuse");
        assert_eq!(l.evict_unreferenced(), 12);
        assert_eq!(l.in_use_blocks(), 0);
        assert_eq!(l.peak_in_use_blocks(), 22);
        assert!(l.utilization() > 0.0);
    }

    #[test]
    fn ledger_reset_models_a_crash() {
        let mut l = BlockLedger::new(16, 32);
        l.admit_shared(7, 4);
        l.sync_private(9);
        l.reset();
        assert_eq!(l.in_use_blocks(), 0);
        assert!(!l.is_resident(7));
        assert_eq!(l.peak_in_use_blocks(), 13, "peak survives the crash");
    }

    #[test]
    #[should_panic(expected = "pool exhausted")]
    fn exhausted_pool_panics_with_context() {
        let mut p = PagedKvPool::new(1, 4, 4, 1);
        let mut c = PagedKvCache::new(1);
        c.append_rows(&mut p, 0, &rows(5, 0.0), &rows(5, 0.0));
    }

    #[test]
    fn position_capacity_rounds_up() {
        let p = PagedKvPool::with_position_capacity(1, 4, 16, 100);
        assert_eq!(p.capacity_blocks(), 7);
        assert_eq!(p.capacity_positions(), 112);
    }

    #[test]
    fn cross_pool_migration_is_bit_identical_and_conserves_refcounts() {
        let mut src = pool();
        let mut dst = pool();
        let mut c = PagedKvCache::new(2);
        for layer in 0..2 {
            c.append_rows(&mut src, layer, &rows(6, 3.0 * layer as f32), &rows(6, 9.0));
        }
        // A forked sibling keeps a shared reference in the source pool, so the
        // migration must drop exactly one reference per block, not free them.
        let mut sibling = c.fork(&mut src);
        let before: Vec<Vec<f32>> = (0..6)
            .map(|i| {
                PagedKv {
                    pool: &mut src,
                    cache: &mut c,
                }
                .kv_key(1, i)
                .to_vec()
            })
            .collect();

        c.migrate(&mut src, &mut dst).expect("dst has room");
        assert_eq!(c.seq_len(), 6, "lens survive migration");
        assert_eq!(dst.blocks_in_use(), 2);
        assert_eq!(
            src.blocks_in_use(),
            2,
            "sibling still holds the source blocks"
        );
        for (i, want) in before.iter().enumerate() {
            let kv = PagedKv {
                pool: &mut dst,
                cache: &mut c,
            };
            assert_eq!(kv.kv_key(1, i), &want[..], "row {i} migrated bit-for-bit");
        }
        assert!(src.check_conservation().is_ok());
        assert!(dst.check_conservation().is_ok());
        c.release(&mut dst);
        sibling.release(&mut src);
        assert_eq!(src.blocks_in_use(), 0);
        assert_eq!(dst.blocks_in_use(), 0);
    }

    #[test]
    fn migration_into_a_full_pool_rolls_back() {
        let mut src = pool();
        let mut dst = PagedKvPool::new(2, 4, 4, 1);
        let mut c = PagedKvCache::new(2);
        for layer in 0..2 {
            c.append_rows(&mut src, layer, &rows(6, 1.0), &rows(6, 2.0));
        }
        assert!(c.migrate(&mut src, &mut dst).is_err());
        assert_eq!(dst.blocks_in_use(), 0, "partial allocation rolled back");
        assert_eq!(c.num_blocks(), 2, "cache stays resident in the source");
        assert_eq!(src.blocks_in_use(), 2);
        c.release(&mut src);
        assert!(src.check_conservation().is_ok());
        assert!(dst.check_conservation().is_ok());
    }

    #[test]
    fn ledger_charges_in_flight_migrations_in_both_directions() {
        let mut l = BlockLedger::new(16, 32);
        l.sync_private(4);
        l.reserve_inbound(6);
        assert_eq!(l.inbound_blocks(), 6);
        assert_eq!(l.in_use_blocks(), 10, "reservation is charged immediately");
        assert_eq!(l.free_blocks(), 22);
        assert_eq!(
            l.leaked_blocks(),
            10,
            "in-flight blocks are not reclaimable"
        );
        assert!(l.check_conservation(0).is_ok());

        // Landing converts the reservation into private footprint.
        l.commit_inbound(6);
        l.sync_private(10);
        assert_eq!(l.inbound_blocks(), 0);
        assert_eq!(l.in_use_blocks(), 10);

        // Outbound: the sequence leaves the running set but stays charged
        // until the transfer lands remotely.
        l.begin_outbound(6);
        l.sync_private(4);
        assert_eq!(l.outbound_blocks(), 6);
        assert_eq!(l.in_use_blocks(), 10);
        l.complete_outbound(6);
        assert_eq!(l.in_use_blocks(), 4);

        // Aborted transfer: the reservation cancels cleanly.
        l.reserve_inbound(3);
        l.cancel_inbound(3);
        assert_eq!(l.inbound_blocks(), 0);
        assert_eq!(l.peak_in_use_blocks(), 16);

        // A crash wipes in-flight accounting with everything else.
        l.reserve_inbound(2);
        l.begin_outbound(2);
        l.reset();
        assert_eq!(l.in_use_blocks(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn inbound_commit_beyond_reservation_panics() {
        let mut l = BlockLedger::new(16, 32);
        l.reserve_inbound(1);
        l.commit_inbound(2);
    }
}
