//! The discrete-event chaos runner: drives the serve frontend, the worker
//! coordinator, and the drafter checkpoint pipeline through one scenario's
//! fault schedule, checking invariants as it goes.
//!
//! Every scenario is executed **twice** and the two runs compared bit-for-bit —
//! seed-determinism is itself one of the checked invariants, so a fault path
//! that consults wall-clock time or unseeded randomness fails the matrix.

use crate::invariants::{check_conservation, check_coordinator, InvariantReport};
use crate::scenario::{DisaggScenario, FaultKind, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use tlt_coord::{Coordinator, CoordinatorConfig, CoordinatorStats, WorkerEvent, WorkerState};
use tlt_draft::{
    serialize_trainable, validate_trainable, DraftModel, DrafterVault, FeatureSource, SwapOutcome,
};
use tlt_gpusim::{GpuType, LlmCostModel};
use tlt_model::{ModelConfig, ModelSpec, SamplingParams, TinyLm};
use tlt_obs::{
    install, record, render_postmortem, uninstall, EventKind, FlightRecorder, ObsEvent, Track,
    DEFAULT_CAPACITY_PER_TRACK, NO_REQ,
};
use tlt_rollout::{
    speculative_generate_with_swap, vanilla_generate, SdManagerConfig, SdMode, SdStrategy,
    SpecDrafter,
};
use tlt_serve::{
    AutoscaleConfig, ClusterReport, ClusterSim, DisaggConfig, ServeConfig, ServeReport,
    ServeRequest, ServeSim, TransferLinkConfig,
};

/// Drafter checkpoint-pipeline counters observed during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize)]
pub struct DrafterFaultStats {
    /// Checkpoints adopted (validated, newer, swapped in).
    pub swaps: u64,
    /// Candidates rejected as corrupt.
    pub rejected_corrupt: u64,
    /// Candidates rejected as stale.
    pub rejected_stale: u64,
    /// Rollbacks to the last known-good state.
    pub rollbacks: u64,
}

/// Everything one scenario run produced.
#[derive(Debug)]
pub struct ChaosOutcome {
    /// The scenario that ran.
    pub scenario: Scenario,
    /// Requests in the (storm-merged) arrival stream.
    pub arrivals: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests dropped at admission (could never fit a KV budget).
    pub dropped: usize,
    /// Failed-over requests re-delivered to a replica.
    pub requeued: u64,
    /// Crash faults applied.
    pub crashes: u64,
    /// Restart faults applied.
    pub restarts: u64,
    /// Coordinator counters at the end of the run.
    pub coordinator: CoordinatorStats,
    /// Drafter checkpoint-pipeline counters.
    pub drafter: DrafterFaultStats,
    /// The serving report of the (first) run.
    pub report: ServeReport,
    /// The invariant verdict.
    pub invariants: InvariantReport,
    /// Flight-recorder events retained by the (first) run, for trace export.
    pub trace: Vec<ObsEvent>,
    /// The rendered flight-recorder dump; `Some` exactly when an invariant
    /// broke. Names the violated invariants, then the last-N events per track.
    pub postmortem: Option<String>,
}

/// Raw artifacts of a single execution, kept for cross-run comparison.
struct RunArtifacts {
    report: ServeReport,
    requeued: u64,
    crashes: u64,
    restarts: u64,
    orphaned: usize,
    drained: bool,
    dropped_ids: Vec<u64>,
    kv_peaks: Vec<(usize, usize)>,
    coordinator: CoordinatorStats,
    drafter: DrafterFaultStats,
    live_drafter: DraftModel,
    violations: InvariantReport,
    events: Vec<ObsEvent>,
}

fn serve_config(scenario: &Scenario) -> ServeConfig {
    let cost = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1);
    // The whole matrix runs on paged (block-granular) KV accounting, so every
    // scenario exercises the pool: admission in blocks, shared prefixes
    // charged once, blocks freed on crash/drain.
    let mut config = ServeConfig::new(cost, scenario.replicas)
        .with_balancer(scenario.balancer)
        .with_paged_kv(16);
    if scenario.adaptive_sd {
        config = config.with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        });
    }
    if scenario.preemption {
        config = config.with_preemption();
    }
    config.max_output_tokens = 256;
    config.seed = scenario.seed;
    config
}

/// The drafter-side state the fault injector manipulates.
struct DrafterPipeline {
    target: TinyLm,
    live: DraftModel,
    vault: DrafterVault,
    /// Version counter for "freshly trained" checkpoints.
    next_version: u64,
    trained_seed: u64,
}

impl DrafterPipeline {
    fn new(seed: u64) -> Self {
        let target = TinyLm::new(ModelConfig::micro(), seed.wrapping_add(1));
        let live = DraftModel::new(&target, FeatureSource::LastLayer, seed.wrapping_add(2));
        DrafterPipeline {
            target,
            live,
            vault: DrafterVault::new(),
            next_version: 1,
            trained_seed: seed.wrapping_add(3),
        }
    }

    /// A "freshly trained" checkpoint: new weights at the next version.
    fn trained_candidate(&mut self) -> Vec<u8> {
        self.trained_seed = self.trained_seed.wrapping_add(1);
        let mut trained =
            DraftModel::new(&self.target, FeatureSource::LastLayer, self.trained_seed);
        trained.version = self.next_version;
        self.next_version += 1;
        serialize_trainable(&trained).to_vec()
    }

    /// Training preempted: the halted session hands over its newest checkpoint
    /// and serving adopts it. Reports whether the swap succeeded.
    fn on_training_preempt(&mut self, violations: &mut InvariantReport) {
        let candidate = self.trained_candidate();
        match self.vault.try_swap(&mut self.live, &candidate) {
            SwapOutcome::Swapped { .. } => {}
            other => violations.violate(
                "checkpoint-guard",
                format!("fresh checkpoint rejected: {other:?}"),
            ),
        }
    }

    /// A corrupt checkpoint arrives: both a truncated and a NaN-poisoned
    /// variant must be rejected, the live drafter must be untouched, and a
    /// last-good rollback must restore damaged weights bit-exactly.
    fn on_corrupt_checkpoint(&mut self, violations: &mut InvariantReport) {
        if self.vault.last_good_version() == 0 {
            self.vault.commit(&self.live);
        }
        let before = self.live.clone();
        let good = self.trained_candidate();

        let mut truncated = good.clone();
        truncated.truncate(truncated.len().saturating_sub(7));
        if !matches!(
            self.vault.try_swap(&mut self.live, &truncated),
            SwapOutcome::RejectedCorrupt { .. }
        ) {
            violations.violate(
                "checkpoint-guard",
                "truncated checkpoint was not rejected".to_string(),
            );
        }

        let mut poisoned = good;
        // Poison the first fusion weight (after the version + shape headers).
        let offset = 8 + 16;
        poisoned[offset..offset + 4].copy_from_slice(&f32::NAN.to_le_bytes());
        if !matches!(
            self.vault.try_swap(&mut self.live, &poisoned),
            SwapOutcome::RejectedCorrupt { .. }
        ) {
            violations.violate(
                "checkpoint-guard",
                "NaN-poisoned checkpoint was not rejected".to_string(),
            );
        }
        if self.live != before {
            violations.violate(
                "checkpoint-guard",
                "rejected checkpoint still mutated the live drafter".to_string(),
            );
        }

        // Simulate a damaged in-memory drafter and roll back to last-good.
        let pristine = serialize_trainable(&self.live);
        for w in self.live.fusion.weight.as_mut_slice() {
            *w = 0.0;
        }
        if !self.vault.restore_last_good(&mut self.live) {
            violations.violate(
                "checkpoint-guard",
                "no last-good state to roll back to".to_string(),
            );
        }
        // The vault's last-good is the most recent *committed* state, which by
        // construction here equals the pre-damage live state.
        if serialize_trainable(&self.live) != pristine {
            violations.violate(
                "checkpoint-guard",
                "rollback did not restore the drafter bit-exactly".to_string(),
            );
        }
    }

    /// A stale checkpoint (not newer than the live drafter) must be rejected.
    fn on_stale_checkpoint(&mut self, violations: &mut InvariantReport) {
        let mut stale = self.live.clone();
        stale.version = self.live.version; // same version: not newer
        let data = serialize_trainable(&stale);
        if !matches!(
            self.vault.try_swap(&mut self.live, &data),
            SwapOutcome::RejectedStale { .. }
        ) {
            violations.violate(
                "checkpoint-guard",
                "stale checkpoint was not rejected".to_string(),
            );
        }
    }
}

/// Mirrors replica health/work onto coordinator worker states, emitting only
/// transitions (so promotion counts stay meaningful).
struct CoordinatorMirror {
    coord: Coordinator,
    reported: Vec<WorkerState>,
}

impl CoordinatorMirror {
    fn new(workers: usize) -> Self {
        CoordinatorMirror {
            coord: Coordinator::new(workers, CoordinatorConfig::default()),
            reported: vec![WorkerState::Busy; workers],
        }
    }

    fn sync(&mut self, sim: &ServeSim, now: f64, violations: &mut InvariantReport) {
        for (i, replica) in sim.replicas().iter().enumerate() {
            let desired = if !replica.is_up() {
                WorkerState::Failed
            } else if replica.has_work() {
                WorkerState::Busy
            } else {
                WorkerState::Idle
            };
            if desired != self.reported[i] {
                self.coord.handle_event(
                    WorkerEvent::StateChanged {
                        worker: i,
                        state: desired,
                        at: now,
                    },
                    now,
                );
                self.reported[i] = desired;
                record(
                    ObsEvent::instant(now, Track::Coordinator, EventKind::WorkerState, NO_REQ)
                        .with_args(i as f64, worker_state_code(desired)),
                );
            }
        }
        check_coordinator(violations, &self.coord, "sync");
    }

    /// The end-of-run sweep: a preemption must always succeed, return every
    /// live worker to BUSY, and leave failed workers failed.
    fn final_sweep(&mut self, violations: &mut InvariantReport) {
        self.coord.preempt_for_rollout();
        check_coordinator(violations, &self.coord, "final-preempt");
        if self.coord.training_session().is_some() {
            violations.violate(
                "coordinator-consistency",
                "session survived the final preemption".to_string(),
            );
        }
        for w in 0..self.coord.num_workers() {
            let state = self.coord.worker_state(w);
            let expected_failed = self.reported[w] == WorkerState::Failed;
            let consistent = if expected_failed {
                state == WorkerState::Failed
            } else {
                state == WorkerState::Busy
            };
            if !consistent {
                violations.violate(
                    "coordinator-consistency",
                    format!("worker {w} is {state} after the final preemption"),
                );
            }
        }
    }
}

/// Trace-arg encoding of a coordinator worker state.
fn worker_state_code(state: WorkerState) -> f64 {
    match state {
        WorkerState::Idle => 0.0,
        WorkerState::Busy => 1.0,
        WorkerState::Training => 2.0,
        WorkerState::Failed => 3.0,
    }
}

fn run_once(scenario: &Scenario) -> RunArtifacts {
    let config = serve_config(scenario);
    let arrivals = scenario.arrival_stream();
    let faults = scenario.runtime_faults();
    // The whole run executes under a flight recorder, so a postmortem always
    // has the last-N events per track. Any recorder the caller had installed
    // (e.g. an `experiments` trace sweep) is stashed and restored on exit.
    let outer_recorder = install(FlightRecorder::new(DEFAULT_CAPACITY_PER_TRACK));
    let mut sim = ServeSim::new(&config);
    let mut mirror = CoordinatorMirror::new(scenario.replicas);
    let mut drafter = DrafterPipeline::new(scenario.seed);
    let mut violations = InvariantReport::new();

    let mut ai = 0usize;
    let mut fi = 0usize;
    loop {
        let t_arrival = arrivals.get(ai).map(|a| a.time_s()).unwrap_or(f64::MAX);
        let t_fault = faults.get(fi).map(|f| f.at_s).unwrap_or(f64::MAX);
        let t_step = sim.next_event_s();
        if t_arrival == f64::MAX && t_fault == f64::MAX && t_step == f64::MAX {
            break;
        }
        if sim.event_budget_exhausted() {
            // advance_before can no longer make progress; bail out and let the
            // `drained` invariant report the leftover work instead of spinning.
            violations.violate(
                "drained",
                "event budget exhausted before the schedule completed".to_string(),
            );
            break;
        }
        // Tie order: faults, then arrivals, then step completions.
        if t_fault <= t_arrival && t_fault <= t_step {
            sim.advance_before(t_fault);
            sim.advance_now(t_fault);
            match faults[fi].kind {
                FaultKind::ReplicaCrash { replica } => {
                    sim.crash_replica(replica);
                }
                FaultKind::ReplicaRestart { replica } => sim.restart_replica(replica),
                FaultKind::SlowReplica { replica, factor } => sim.set_slow_factor(replica, factor),
                FaultKind::TrainingPreempt => {
                    mirror.coord.preempt_for_rollout();
                    mirror.reported = mirror
                        .reported
                        .iter()
                        .map(|&s| {
                            if s == WorkerState::Failed {
                                WorkerState::Failed
                            } else {
                                WorkerState::Busy
                            }
                        })
                        .collect();
                    drafter.on_training_preempt(&mut violations);
                }
                FaultKind::CheckpointCorrupt => drafter.on_corrupt_checkpoint(&mut violations),
                FaultKind::CheckpointStale => drafter.on_stale_checkpoint(&mut violations),
                FaultKind::ArrivalStorm { .. } => {
                    unreachable!("storms are folded into the arrival stream")
                }
            }
            fi += 1;
            mirror.sync(&sim, t_fault, &mut violations);
        } else if t_arrival <= t_step {
            sim.advance_before(t_arrival);
            sim.offer(ServeRequest::from_arrival(&arrivals[ai]));
            ai += 1;
            mirror.sync(&sim, t_arrival, &mut violations);
        } else {
            let horizon = t_arrival.min(t_fault);
            sim.advance_before(horizon);
            mirror.sync(&sim, sim.now_s(), &mut violations);
        }
    }
    if scenario.probe_violation {
        record(ObsEvent::instant(
            sim.now_s(),
            Track::Coordinator,
            EventKind::Probe,
            NO_REQ,
        ));
        violations.violate(
            "postmortem-probe",
            "forced violation probe (alerting-path self-test)".to_string(),
        );
    }
    mirror.final_sweep(&mut violations);
    let events = uninstall()
        .expect("flight recorder installed at run start")
        .events();
    if let Some(outer) = outer_recorder {
        install(outer);
    }

    let (crashes, restarts) = sim.fault_counts();
    let requeued = sim.requeued();
    let orphaned = sim.orphaned();
    let drained = !sim.has_work();
    let dropped_ids = sim.dropped_ids();
    // KV budget is checked in block units (the matrix runs paged accounting).
    let kv_peaks = sim
        .replicas()
        .iter()
        .map(|r| (r.peak_kv_blocks(), r.kv_block_budget()))
        .collect();
    // Pool conservation: refcounts coherent on every replica, and — once the
    // deployment has drained — no block left referenced (leak check).
    for (i, replica) in sim.replicas().iter().enumerate() {
        if let Err(detail) = replica.kv_pool_check() {
            violations.violate("kv-pool-conservation", format!("replica {i}: {detail}"));
        }
        if drained && replica.kv_pool_leaked() > 0 {
            violations.violate(
                "kv-pool-conservation",
                format!(
                    "replica {i} leaked {} blocks after the full drain",
                    replica.kv_pool_leaked()
                ),
            );
        }
    }
    let (swaps, rejected_corrupt, rejected_stale, rollbacks) = drafter.vault.counters();
    RunArtifacts {
        report: sim.into_report(),
        requeued,
        crashes,
        restarts,
        orphaned,
        drained,
        dropped_ids,
        kv_peaks,
        coordinator: mirror.coord.stats(),
        drafter: DrafterFaultStats {
            swaps,
            rejected_corrupt,
            rejected_stale,
            rollbacks,
        },
        live_drafter: drafter.live,
        violations,
        events,
    }
}

/// Token-level losslessness probe: with the *post-fault* serving drafter, greedy
/// speculative decoding — including a mid-generation swap to a second drafter —
/// must emit exactly the vanilla sequence.
fn check_losslessness(scenario: &Scenario, live: &DraftModel, report: &mut InvariantReport) {
    if validate_trainable(&serialize_trainable(live)).is_err() {
        report.violate(
            "losslessness",
            "post-fault serving drafter holds invalid weights".to_string(),
        );
        return;
    }
    let target = TinyLm::new(ModelConfig::micro(), scenario.seed.wrapping_add(1));
    let other = DraftModel::new(
        &target,
        FeatureSource::LastLayer,
        scenario.seed.wrapping_add(9),
    );
    let params = SamplingParams::greedy();
    let strategy = SdStrategy {
        draft_depth: 4,
        top_k: 1,
        tokens_to_verify: 4,
    };
    for p in 0..3u64 {
        let prompt: Vec<u32> = vec![1 + (p as u32 % 5), 4, 2, 8];
        let mut rng = StdRng::seed_from_u64(p);
        let vanilla = vanilla_generate(&target, &prompt, 24, params, None, &mut rng);
        let spec_live = SpecDrafter::Learned(live);
        let spec_other = SpecDrafter::Learned(&other);
        let mut rng = StdRng::seed_from_u64(p + 100);
        let swapped = speculative_generate_with_swap(
            &target,
            &[(2, &spec_live), (usize::MAX, &spec_other)],
            &prompt,
            24,
            strategy,
            params,
            None,
            &mut rng,
        );
        if swapped.tokens != vanilla.tokens {
            report.violate(
                "losslessness",
                format!(
                    "prompt {p}: speculative output diverged across a drafter swap \
                     ({} vs {} tokens)",
                    swapped.tokens.len(),
                    vanilla.tokens.len()
                ),
            );
        }
    }
}

fn check_determinism(a: &RunArtifacts, b: &RunArtifacts, report: &mut InvariantReport) {
    if a.report.completed != b.report.completed {
        report.violate(
            "seed-determinism",
            "per-request completion records differ between identical runs".to_string(),
        );
    }
    if a.report.makespan_s != b.report.makespan_s
        || a.report.throughput_tokens_per_s != b.report.throughput_tokens_per_s
    {
        report.violate(
            "seed-determinism",
            "aggregate metrics differ between identical runs".to_string(),
        );
    }
    if (a.requeued, a.crashes, a.restarts, a.orphaned)
        != (b.requeued, b.crashes, b.restarts, b.orphaned)
    {
        report.violate(
            "seed-determinism",
            "fault accounting differs between identical runs".to_string(),
        );
    }
    if a.coordinator != b.coordinator {
        report.violate(
            "seed-determinism",
            "coordinator stats differ between identical runs".to_string(),
        );
    }
    if a.drafter != b.drafter || a.live_drafter != b.live_drafter {
        report.violate(
            "seed-determinism",
            "drafter pipeline state differs between identical runs".to_string(),
        );
    }
    if a.events != b.events {
        report.violate(
            "seed-determinism",
            "flight-recorder traces differ between identical runs".to_string(),
        );
    }
}

/// Runs one scenario (twice, for the determinism invariant) and returns the
/// outcome with its invariant verdict.
pub fn run_scenario(scenario: &Scenario) -> ChaosOutcome {
    let arrivals = scenario.arrival_stream();
    let first = run_once(scenario);
    let second = run_once(scenario);

    let mut invariants = first.violations.clone();

    // Request conservation: every arrival completes or drops exactly once.
    let arrival_ids: Vec<u64> = arrivals.iter().map(|a| a.id).collect();
    let completed_ids: Vec<u64> = first.report.completed.iter().map(|r| r.id).collect();
    check_conservation(
        &mut invariants,
        &arrival_ids,
        &completed_ids,
        &first.dropped_ids,
    );

    // KV budget: no replica ever started a step with more blocks charged
    // than its pool holds.
    for (replica, &(peak, budget)) in first.kv_peaks.iter().enumerate() {
        if peak > budget {
            invariants.violate(
                "kv-budget",
                format!("replica {replica} peaked at {peak} KV blocks (pool budget {budget})"),
            );
        }
    }

    // The deployment drained (nothing queued, running, in flight, or orphaned).
    if !first.drained {
        invariants.violate(
            "drained",
            format!(
                "work left behind at end of schedule ({} orphaned)",
                first.orphaned
            ),
        );
    }

    check_losslessness(scenario, &first.live_drafter, &mut invariants);
    check_determinism(&first, &second, &mut invariants);

    // Any violation dumps the flight recorder: the violated invariants first,
    // then the last-N events per track — the operator-facing crash artifact.
    let postmortem = (!invariants.passed()).then(|| {
        let mut header = format!(
            "scenario '{}' (seed {}): {}\n",
            scenario.name,
            scenario.seed,
            invariants.verdict()
        );
        for v in &invariants.violations {
            header.push_str(&format!("violated {}: {}\n", v.invariant, v.detail));
        }
        render_postmortem(&header, &first.events)
    });

    ChaosOutcome {
        scenario: scenario.clone(),
        arrivals: arrivals.len(),
        completed: first.report.completed.len(),
        dropped: first.report.dropped,
        requeued: first.requeued,
        crashes: first.crashes,
        restarts: first.restarts,
        coordinator: first.coordinator,
        drafter: first.drafter,
        report: first.report,
        invariants,
        trace: first.events,
        postmortem,
    }
}

/// Runs every scenario in the pinned matrix.
pub fn run_pinned_matrix() -> Vec<ChaosOutcome> {
    crate::scenario::pinned_matrix()
        .iter()
        .map(run_scenario)
        .collect()
}

/// Everything one disaggregated-cluster scenario run produced.
#[derive(Debug)]
pub struct DisaggChaosOutcome {
    /// The scenario that ran.
    pub scenario: DisaggScenario,
    /// Requests in the (storm-merged) arrival stream.
    pub arrivals: usize,
    /// Requests completed.
    pub completed: usize,
    /// Requests dropped at admission.
    pub dropped: usize,
    /// Failed-over requests re-routed through the prefill pool.
    pub requeued: u64,
    /// Crash faults applied.
    pub crashes: u64,
    /// Restart faults applied.
    pub restarts: u64,
    /// The cluster report of the (first) run — migrations, transfer-link and
    /// autoscaler counters included.
    pub report: ClusterReport,
    /// The invariant verdict.
    pub invariants: InvariantReport,
    /// Flight-recorder events retained by the (first) run.
    pub trace: Vec<ObsEvent>,
    /// The rendered flight-recorder dump; `Some` exactly when an invariant
    /// broke.
    pub postmortem: Option<String>,
}

/// Raw artifacts of a single disaggregated execution.
struct DisaggRunArtifacts {
    report: ClusterReport,
    requeued: u64,
    crashes: u64,
    restarts: u64,
    orphaned: usize,
    drained: bool,
    dropped_ids: Vec<u64>,
    kv_peaks: Vec<(&'static str, usize, usize, usize)>,
    violations: InvariantReport,
    events: Vec<ObsEvent>,
}

fn disagg_config(scenario: &DisaggScenario) -> DisaggConfig {
    let cost = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1);
    // Paged accounting is mandatory on the cluster path (migration is a block
    // handoff); same model/GPU and output cap as the monolithic suite.
    let mut base = ServeConfig::new(cost, 1).with_paged_kv(16);
    base.max_output_tokens = 256;
    base.seed = scenario.seed;
    let mut config = DisaggConfig::new(base, scenario.prefill_replicas, scenario.decode_replicas)
        .with_link(TransferLinkConfig {
            bandwidth_gbps: scenario.link_bandwidth_gbps,
            latency_s: scenario.link_latency_s,
        });
    if scenario.autoscale {
        // Aggressive thresholds sized to the chaos workload (short prompts,
        // <=256-token outputs) so a storm provably grows the pools and the
        // post-storm lull provably drains them.
        config = config.with_autoscale(AutoscaleConfig {
            interval_s: 0.5,
            min_prefill: 1,
            max_prefill: scenario.prefill_replicas.max(3),
            min_decode: 1,
            max_decode: scenario.decode_replicas.max(3),
            prefill_queue_high: 2.0,
            prefill_queue_low: 0.25,
            decode_tokens_high: 4_000.0,
            decode_tokens_low: 200.0,
            spawn_delay_s: 0.25,
        });
    }
    config
}

fn run_disagg_once(scenario: &DisaggScenario) -> DisaggRunArtifacts {
    let config = disagg_config(scenario);
    let arrivals = scenario.arrival_stream();
    let faults = scenario.runtime_faults();
    let outer_recorder = install(FlightRecorder::new(DEFAULT_CAPACITY_PER_TRACK));
    let mut sim = ClusterSim::new(config);
    let mut violations = InvariantReport::new();

    let mut ai = 0usize;
    let mut fi = 0usize;
    loop {
        let t_arrival = arrivals.get(ai).map(|a| a.time_s()).unwrap_or(f64::MAX);
        let t_fault = faults.get(fi).map(|f| f.at_s).unwrap_or(f64::MAX);
        if t_arrival == f64::MAX && t_fault == f64::MAX {
            // Schedule exhausted: drain through the cluster's own loop, which
            // stops firing autoscaler ticks the moment no work remains.
            sim.run_until_drained();
            break;
        }
        if sim.event_budget_exhausted() {
            violations.violate(
                "drained",
                "event budget exhausted before the schedule completed".to_string(),
            );
            break;
        }
        let t_step = sim.next_event_s();
        // Tie order matches the monolithic runner: faults, then arrivals,
        // then step completions.
        if t_fault <= t_arrival && t_fault <= t_step {
            sim.advance_before(t_fault);
            match faults[fi].kind {
                FaultKind::ReplicaCrash { replica } => sim.crash_replica(replica, t_fault),
                FaultKind::ReplicaRestart { replica } => sim.restart_replica(replica, t_fault),
                FaultKind::SlowReplica { replica, factor } => {
                    sim.advance_now(t_fault);
                    sim.set_slow_factor(replica, factor);
                }
                _ => unreachable!("the builder rejects non-serving faults"),
            }
            fi += 1;
        } else if t_arrival <= t_step {
            sim.advance_before(t_arrival);
            sim.offer(ServeRequest::from_arrival(&arrivals[ai]));
            ai += 1;
        } else {
            sim.advance_before(t_arrival.min(t_fault));
        }
    }

    let (crashes, restarts) = sim.fault_counts();
    let requeued = sim.requeued();
    let orphaned = sim.orphaned();
    let drained = !sim.has_work();
    let dropped_ids = sim.dropped_ids();
    let kv_peaks = sim.kv_peaks();
    // Pool conservation across BOTH pools plus the in-flight migration
    // charges: refcounts coherent everywhere, and — once drained — no block
    // left referenced on either side of the link.
    if let Err(detail) = sim.kv_pool_check() {
        violations.violate("kv-pool-conservation", detail);
    }
    if drained && sim.kv_pool_leaked() > 0 {
        violations.violate(
            "kv-pool-conservation",
            format!(
                "{} blocks leaked across the pools after the full drain",
                sim.kv_pool_leaked()
            ),
        );
    }
    let events = uninstall()
        .expect("flight recorder installed at run start")
        .events();
    if let Some(outer) = outer_recorder {
        install(outer);
    }
    DisaggRunArtifacts {
        report: sim.into_report(),
        requeued,
        crashes,
        restarts,
        orphaned,
        drained,
        dropped_ids,
        kv_peaks,
        violations,
        events,
    }
}

fn check_disagg_determinism(
    a: &DisaggRunArtifacts,
    b: &DisaggRunArtifacts,
    report: &mut InvariantReport,
) {
    if a.report.serve.completed != b.report.serve.completed {
        report.violate(
            "seed-determinism",
            "per-request completion records differ between identical runs".to_string(),
        );
    }
    if a.report.serve.makespan_s != b.report.serve.makespan_s
        || a.report.migrations != b.report.migrations
        || a.report.migrated_blocks != b.report.migrated_blocks
        || a.report.aborted_transfers != b.report.aborted_transfers
    {
        report.violate(
            "seed-determinism",
            "migration accounting differs between identical runs".to_string(),
        );
    }
    if a.report.scale_ups != b.report.scale_ups
        || a.report.scale_downs != b.report.scale_downs
        || a.report.retires != b.report.retires
        || a.report.avg_active_replicas != b.report.avg_active_replicas
    {
        report.violate(
            "seed-determinism",
            "autoscaler decisions differ between identical runs".to_string(),
        );
    }
    if (a.requeued, a.crashes, a.restarts, a.orphaned)
        != (b.requeued, b.crashes, b.restarts, b.orphaned)
    {
        report.violate(
            "seed-determinism",
            "fault accounting differs between identical runs".to_string(),
        );
    }
    if a.events != b.events {
        report.violate(
            "seed-determinism",
            "flight-recorder traces differ between identical runs".to_string(),
        );
    }
}

/// Runs one disaggregated scenario (twice, for the determinism invariant) and
/// returns the outcome with its invariant verdict.
pub fn run_disagg_scenario(scenario: &DisaggScenario) -> DisaggChaosOutcome {
    let arrivals = scenario.arrival_stream();
    let first = run_disagg_once(scenario);
    let second = run_disagg_once(scenario);

    let mut invariants = first.violations.clone();

    let arrival_ids: Vec<u64> = arrivals.iter().map(|a| a.id).collect();
    let completed_ids: Vec<u64> = first.report.serve.completed.iter().map(|r| r.id).collect();
    check_conservation(
        &mut invariants,
        &arrival_ids,
        &completed_ids,
        &first.dropped_ids,
    );

    for &(pool, index, peak, budget) in &first.kv_peaks {
        if peak > budget {
            invariants.violate(
                "kv-budget",
                format!("{pool} replica {index} peaked at {peak} KV blocks (pool budget {budget})"),
            );
        }
    }

    if !first.drained {
        invariants.violate(
            "drained",
            format!(
                "work left behind at end of schedule ({} orphaned)",
                first.orphaned
            ),
        );
    }

    check_disagg_determinism(&first, &second, &mut invariants);

    let postmortem = (!invariants.passed()).then(|| {
        let mut header = format!(
            "disagg scenario '{}' (seed {}): {}\n",
            scenario.name,
            scenario.seed,
            invariants.verdict()
        );
        for v in &invariants.violations {
            header.push_str(&format!("violated {}: {}\n", v.invariant, v.detail));
        }
        render_postmortem(&header, &first.events)
    });

    DisaggChaosOutcome {
        scenario: scenario.clone(),
        arrivals: arrivals.len(),
        completed: first.report.serve.completed.len(),
        dropped: first.report.serve.dropped,
        requeued: first.requeued,
        crashes: first.crashes,
        restarts: first.restarts,
        report: first.report,
        invariants,
        trace: first.events,
        postmortem,
    }
}

/// Runs every scenario in the pinned disaggregated matrix.
pub fn run_disagg_matrix() -> Vec<DisaggChaosOutcome> {
    crate::scenario::disagg_matrix()
        .iter()
        .map(run_disagg_scenario)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::Scenario;

    #[test]
    fn baseline_scenario_passes_every_invariant() {
        let outcome = run_scenario(
            &Scenario::builder("unit-baseline")
                .seed(1)
                .arrivals(4.0, 5.0)
                .build(),
        );
        assert!(
            outcome.invariants.passed(),
            "violations: {:?}",
            outcome.invariants.violations
        );
        assert_eq!(outcome.completed + outcome.dropped, outcome.arrivals);
        assert_eq!(outcome.crashes, 0);
        assert!(outcome.postmortem.is_none(), "no violation, no dump");
        assert!(
            !outcome.trace.is_empty(),
            "the flight recorder runs on every scenario"
        );
    }

    #[test]
    fn forced_violation_dumps_a_postmortem_with_the_probe() {
        let outcome = run_scenario(
            &Scenario::builder("unit-probe")
                .seed(4)
                .arrivals(4.0, 5.0)
                .forced_violation()
                .build(),
        );
        assert!(!outcome.invariants.passed());
        let dump = outcome
            .postmortem
            .expect("violation must dump the recorder");
        assert!(dump.contains("flight recorder postmortem"));
        assert!(dump.contains("scenario 'unit-probe'"));
        assert!(dump.contains("violated postmortem-probe"));
        assert!(dump.contains("probe"), "the probe event itself is retained");
        assert!(dump.contains("-- frontend"), "frontend track present");
    }

    #[test]
    fn crash_scenario_requeues_and_still_conserves() {
        let outcome = run_scenario(
            &Scenario::builder("unit-crash")
                .seed(2)
                .replicas(3)
                .arrivals(20.0, 6.0)
                .crash(2.5, 1)
                .build(),
        );
        assert!(
            outcome.invariants.passed(),
            "violations: {:?}",
            outcome.invariants.violations
        );
        assert!(outcome.requeued > 0, "the crash must drain live requests");
        assert_eq!(outcome.crashes, 1);
        assert!(outcome.coordinator.workers_failed >= 1);
    }

    #[test]
    fn mid_transfer_source_crash_requeues_and_conserves() {
        let scenario = crate::scenario::disagg_matrix()
            .into_iter()
            .find(|s| s.name == "disagg-mid-transfer-source-crash")
            .expect("pinned disagg matrix names a source-crash scenario");
        let outcome = run_disagg_scenario(&scenario);
        assert!(
            outcome.invariants.passed(),
            "violations: {:?}",
            outcome.invariants.violations
        );
        assert!(
            outcome.report.aborted_transfers > 0,
            "the crash must land inside a KV transfer window \
             (got {} aborts, {} migrations)",
            outcome.report.aborted_transfers,
            outcome.report.migrations
        );
        assert!(outcome.requeued > 0, "in-flight work must be re-queued");
        assert_eq!(outcome.crashes, 1);
        assert_eq!(outcome.restarts, 1);
        assert_eq!(outcome.completed + outcome.dropped, outcome.arrivals);
    }

    #[test]
    fn mid_transfer_dest_crash_aborts_and_conserves() {
        let scenario = crate::scenario::disagg_matrix()
            .into_iter()
            .find(|s| s.name == "disagg-mid-transfer-dest-crash")
            .expect("pinned disagg matrix names a dest-crash scenario");
        let outcome = run_disagg_scenario(&scenario);
        assert!(
            outcome.invariants.passed(),
            "violations: {:?}",
            outcome.invariants.violations
        );
        assert!(
            outcome.report.aborted_transfers > 0,
            "the crash must land inside a KV transfer window \
             (got {} aborts, {} migrations)",
            outcome.report.aborted_transfers,
            outcome.report.migrations
        );
        assert_eq!(outcome.completed + outcome.dropped, outcome.arrivals);
    }

    #[test]
    fn autoscale_storm_scales_up_and_retires_clean() {
        let scenario = crate::scenario::disagg_matrix()
            .into_iter()
            .find(|s| s.name == "disagg-autoscale-drain-storm")
            .expect("pinned disagg matrix names an autoscale storm scenario");
        let outcome = run_disagg_scenario(&scenario);
        assert!(
            outcome.invariants.passed(),
            "violations: {:?}",
            outcome.invariants.violations
        );
        assert!(
            outcome.report.scale_ups > 0,
            "the storm must trip the autoscaler up (got {} scale-ups)",
            outcome.report.scale_ups
        );
        assert!(
            outcome.report.retires > 0,
            "the post-storm lull must drain-and-retire (got {} retires)",
            outcome.report.retires
        );
        assert_eq!(outcome.completed + outcome.dropped, outcome.arrivals);
    }

    #[test]
    fn checkpoint_faults_are_rejected_and_counted() {
        let outcome = run_scenario(
            &Scenario::builder("unit-ckpt")
                .seed(3)
                .arrivals(3.0, 5.0)
                .preempt_training(1.0)
                .corrupt_checkpoint(2.0)
                .stale_checkpoint(3.0)
                .build(),
        );
        assert!(
            outcome.invariants.passed(),
            "violations: {:?}",
            outcome.invariants.violations
        );
        assert_eq!(outcome.drafter.swaps, 1, "the preempt commit swaps once");
        assert_eq!(outcome.drafter.rejected_corrupt, 2, "both corrupt variants");
        assert_eq!(outcome.drafter.rejected_stale, 1);
        assert_eq!(outcome.drafter.rollbacks, 1);
    }
}
