//! Indexed event core: a lazy-invalidation binary-heap scheduler shared by
//! [`ServeSim`] and [`ClusterSim`].
//!
//! Both simulators used to find their next event with a linear scan over every
//! replica (plus the transfer link and the autoscaler tick), making a long run
//! O(events × replicas). The event core replaces the scan with a min-heap of
//! [`EventKey`]s ordered by `(time, class, index)` — exactly the tie-break the
//! scans used — so event selection is O(log n) and, after a step completes,
//! only the stepped source's key is re-pushed (the scan re-derived the minimum
//! from scratch every iteration).
//!
//! **Lazy invalidation.** Keys are never removed or updated in place: every
//! mutation that changes a source's next-event time pushes a fresh key, and a
//! popped key is validated against the source's *current* time (compared as
//! raw f64 bits) — a mismatch means the key is stale and it is discarded. The
//! invariant is one-sided: every live event source always has its current key
//! somewhere in the heap; the heap may additionally hold any number of stale
//! keys. Because a source mutates at most a constant number of times per
//! processed event (a step completion, an enqueue, a crash/restart, a
//! dispatch), the heap holds at most O(live sources + events processed since
//! the last drain) entries and the amortized cost per event is O(log n) —
//! stale pops are paid for by the push that created them.
//!
//! **Determinism.** `f64::to_bits` is order-preserving for non-negative
//! floats, and every simulated timestamp is non-negative and finite
//! (`f64::MAX` keys are never pushed), so the integer heap order equals the
//! float order the scans used — event order, and therefore every metric,
//! trace, and chaos invariant, is bit-identical between the two cores (the
//! `event_core` test suite enforces this).
//!
//! [`ServeSim`]: crate::ServeSim
//! [`ClusterSim`]: crate::ClusterSim

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which next-event implementation a simulator uses. The linear scan is kept
/// both as the bit-identity oracle for the heap and for the
/// `sim_event_core_speedup` benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventCore {
    /// Lazy-invalidation binary heap keyed on each source's next-event time
    /// (the default).
    #[default]
    IndexedHeap,
    /// The original O(sources) scan per event.
    LinearScan,
}

/// A scheduled event key, ordered by `(time, class, index)`. Time is stored as
/// `f64::to_bits`, which is monotonic for the non-negative finite timestamps
/// the simulators produce, so integer comparison reproduces float comparison
/// exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    time_bits: u64,
    class: u8,
    index: usize,
}

impl EventKey {
    /// Builds a key for an event of `class` on source `index` due at `time_s`.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `time_s` is negative or not finite — such a
    /// timestamp would break the `to_bits` ordering argument.
    pub fn new(time_s: f64, class: u8, index: usize) -> Self {
        debug_assert!(
            time_s >= 0.0 && time_s.is_finite(),
            "event times must be non-negative and finite, got {time_s}"
        );
        EventKey {
            time_bits: time_s.to_bits(),
            class,
            index,
        }
    }

    /// The event's due time in seconds.
    pub fn time_s(&self) -> f64 {
        f64::from_bits(self.time_bits)
    }

    /// The due time as raw bits, for exact staleness comparison.
    pub fn time_bits(&self) -> u64 {
        self.time_bits
    }

    /// The event class (same-time ordering rank).
    pub fn class(&self) -> u8 {
        self.class
    }

    /// The event source index within its class.
    pub fn index(&self) -> usize {
        self.index
    }
}

/// Min-heap of [`EventKey`]s with lazy invalidation. Pushing a key whose time
/// is `f64::MAX` is a no-op (idle sources schedule nothing), so callers can
/// push a source's `next_event_s()` unconditionally.
#[derive(Debug, Clone, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<EventKey>>,
}

impl EventQueue {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue::default()
    }

    /// Schedules an event (no-op for `f64::MAX`, the idle sentinel).
    pub fn push(&mut self, time_s: f64, class: u8, index: usize) {
        if time_s < f64::MAX {
            self.heap.push(Reverse(EventKey::new(time_s, class, index)));
        }
    }

    /// Re-schedules an already-built key (used to put back a popped key that
    /// could not be processed, e.g. on budget exhaustion or tick deferral).
    pub fn push_key(&mut self, key: EventKey) {
        self.heap.push(Reverse(key));
    }

    /// The earliest key, without removing it. May be stale — the caller
    /// validates after popping.
    pub fn peek(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(k)| *k)
    }

    /// Removes and returns the earliest key.
    pub fn pop(&mut self) -> Option<EventKey> {
        self.heap.pop().map(|Reverse(k)| k)
    }

    /// Drops every key (used when re-seeding after an event-core switch).
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Number of keys currently held, stale ones included.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue holds no keys at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Typed outcome of a simulation drive call (`advance_before` /
/// `run_until_drained`): either every due event was processed, or the hard
/// event budget tripped and the drive stopped early with events still due.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DriveOutcome {
    /// All events due in the driven window were processed.
    Completed,
    /// The event budget was exhausted with at least one event still due; the
    /// simulator reports it once through the flight recorder and refuses
    /// further progress.
    BudgetExhausted,
}

impl DriveOutcome {
    /// Whether this drive stopped on budget exhaustion.
    pub fn budget_exhausted(&self) -> bool {
        matches!(self, DriveOutcome::BudgetExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_order_by_time_then_class_then_index() {
        let mut q = EventQueue::new();
        q.push(2.0, 0, 0);
        q.push(1.0, 3, 9);
        q.push(1.0, 1, 2);
        q.push(1.0, 1, 1);
        q.push(f64::MAX, 0, 0); // idle sentinel: dropped
        let order: Vec<(f64, u8, usize)> = std::iter::from_fn(|| q.pop())
            .map(|k| (k.time_s(), k.class(), k.index()))
            .collect();
        assert_eq!(
            order,
            vec![(1.0, 1, 1), (1.0, 1, 2), (1.0, 3, 9), (2.0, 0, 0)]
        );
    }

    #[test]
    fn to_bits_order_matches_float_order_for_sim_times() {
        let times = [0.0, 1e-12, 0.5, 1.0, 1.0 + f64::EPSILON, 3600.0, 1e300];
        for w in times.windows(2) {
            assert!(w[0].to_bits() < w[1].to_bits(), "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn push_key_round_trips_exact_bits() {
        let mut q = EventQueue::new();
        let t = 0.1 + 0.2; // not exactly representable as 0.3
        q.push(t, 2, 7);
        let k = q.pop().unwrap();
        assert_eq!(k.time_bits(), t.to_bits());
        q.push_key(k);
        assert_eq!(q.peek(), Some(k));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn drive_outcome_reports_exhaustion() {
        assert!(!DriveOutcome::Completed.budget_exhausted());
        assert!(DriveOutcome::BudgetExhausted.budget_exhausted());
    }
}
