//! # tlt-workload
//!
//! Workload generation for the TLT reproduction: long-tail response-length
//! distributions (Figure 1a / Figure 2), synthetic verifiable reasoning tasks that
//! play the role of the paper's Eurus-2-RL dataset for the tiny-model substrate,
//! ByteDance-style production trace synthesis, and open-loop request arrival
//! processes (Poisson over constant / diurnal / bursty rate curves) for the
//! `tlt-serve` online serving subsystem.
//!
//! ```
//! use tlt_workload::{LengthDistribution, LengthStats};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let lengths = LengthDistribution::paper_fig1().sample_many(1000, &mut rng);
//! let stats = LengthStats::from_lengths(&lengths);
//! assert!(stats.max as f64 > 3.0 * stats.p75); // long tail
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arrival;
pub mod longtail;
pub mod tasks;
pub mod trace;

pub use arrival::{
    generate_arrivals, merge_arrival_streams, shift_arrivals, ArrivalConfig, ArrivalFeed,
    RateCurve, RequestArrival, SharedPrefixSpec,
};
pub use longtail::{length_histogram, percentile, LengthDistribution, LengthStats};
pub use tasks::{ReasoningTask, TaskGenerator, Vocabulary};
pub use trace::{synthesize_bytedance_trace, TraceConfig, TraceStep, TraceSummary};
