//! # tlt-draft
//!
//! The Adaptive Drafter of the TLT reproduction (§4 of the paper): an EAGLE-style
//! single-decoder-layer draft model tied to the target's frozen embedding/LM head, a
//! unified training pipeline supporting EAGLE / HASS / EAGLE-3 / OSD strategies, the
//! online DataBuffer with one-step-offset sampling, sequence packing, selective
//! asynchronous checkpointing, and acceptance-length modelling used by the
//! timing-level simulations.
//!
//! ```
//! use tlt_draft::{DraftModel, FeatureSource};
//! use tlt_model::{ModelConfig, TinyLm};
//!
//! let target = TinyLm::new(ModelConfig::tiny(), 0);
//! let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 1);
//! assert!(drafter.num_parameters() * 2 < target.num_parameters());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod acceptance;
pub mod checkpoint;
pub mod data_buffer;
pub mod model;
pub mod packing;
pub mod strategy;
pub mod trainer;

pub use acceptance::AcceptanceProfile;
pub use checkpoint::{
    restore_trainable, serialize_trainable, try_restore_trainable, validate_trainable,
    CheckpointError, CheckpointMode, CheckpointReport, CheckpointStore, DrafterVault, SwapOutcome,
};
pub use data_buffer::{DataBuffer, DataBufferConfig, TrainingSample};
pub use model::{DraftGrads, DraftModel, DraftScratch, DraftState, FeatureSource, Linear};
pub use packing::{pack_sequences, packing_stats, PackingPlan, PackingStats};
pub use strategy::TrainingStrategy;
pub use trainer::{DrafterTrainer, TrainMetrics, TrainerConfig};
