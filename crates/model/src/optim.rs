//! Adam optimizer used for drafter training and the target policy update.
//!
//! The paper trains both the target model and the drafter with Adam (mixed-precision
//! BF16 in the original system); here a plain `f32` Adam with bias correction and
//! optional decoupled weight decay is sufficient.

use crate::layers::{DecoderLayer, DecoderLayerGrads};
use crate::tensor::Mat;
use serde::{Deserialize, Serialize};

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay coefficient (AdamW style).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

impl AdamConfig {
    /// Configuration used for drafter spot-training.
    pub fn drafter() -> Self {
        AdamConfig {
            lr: 3e-3,
            ..AdamConfig::default()
        }
    }
}

/// First/second moment state for one flat parameter buffer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct MomentPair {
    m: Vec<f32>,
    v: Vec<f32>,
}

impl MomentPair {
    fn sized(len: usize) -> Self {
        MomentPair {
            m: vec![0.0; len],
            v: vec![0.0; len],
        }
    }
}

/// Adam optimizer over named flat parameter buffers.
///
/// Buffers are registered lazily on first update; repeated updates with the same
/// name reuse the accumulated moments.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Adam {
    config: AdamConfig,
    step: u64,
    moments: std::collections::BTreeMap<String, MomentPair>,
}

impl Adam {
    /// Creates an optimizer with the given hyperparameters.
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            step: 0,
            moments: std::collections::BTreeMap::new(),
        }
    }

    /// Number of optimisation steps performed so far.
    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Current hyperparameters.
    pub fn config(&self) -> AdamConfig {
        self.config
    }

    /// Changes the learning rate (used for lr schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Advances the global step counter. Call once per optimisation step, before
    /// updating any parameter buffers belonging to that step.
    pub fn begin_step(&mut self) {
        self.step += 1;
    }

    /// Applies an Adam update to a flat buffer identified by `name`.
    ///
    /// # Panics
    ///
    /// Panics if `param` and `grad` have different lengths, or if a buffer with the
    /// same name was previously registered with a different length.
    pub fn update_slice(&mut self, name: &str, param: &mut [f32], grad: &[f32]) {
        assert_eq!(
            param.len(),
            grad.len(),
            "parameter/gradient length mismatch"
        );
        assert!(self.step > 0, "call begin_step before update");
        let entry = self
            .moments
            .entry(name.to_string())
            .or_insert_with(|| MomentPair::sized(param.len()));
        assert_eq!(
            entry.m.len(),
            param.len(),
            "buffer '{name}' changed length between updates"
        );
        let cfg = &self.config;
        let t = self.step as f32;
        let bias1 = 1.0 - cfg.beta1.powf(t);
        let bias2 = 1.0 - cfg.beta2.powf(t);
        // Iterator-lockstep form so the compiler elides bounds checks and
        // vectorises the whole update (including sqrt/div); element math and
        // order are unchanged.
        for ((p, &g), (m, v)) in param
            .iter_mut()
            .zip(grad.iter())
            .zip(entry.m.iter_mut().zip(entry.v.iter_mut()))
        {
            *m = cfg.beta1 * *m + (1.0 - cfg.beta1) * g;
            *v = cfg.beta2 * *v + (1.0 - cfg.beta2) * g * g;
            let m_hat = *m / bias1;
            let v_hat = *v / bias2;
            let update = m_hat / (v_hat.sqrt() + cfg.eps) + cfg.weight_decay * *p;
            *p -= cfg.lr * update;
        }
    }

    /// Applies an Adam update to a matrix parameter.
    pub fn update_mat(&mut self, name: &str, param: &mut Mat, grad: &Mat) {
        assert_eq!(
            param.shape(),
            grad.shape(),
            "matrix shape mismatch for {name}"
        );
        // Split borrow: copy grad slice reference before mutable borrow of param data.
        let grad_slice = grad.as_slice().to_vec();
        self.update_slice(name, param.as_mut_slice(), &grad_slice);
    }

    /// Applies an Adam update to every parameter of a decoder layer under the name
    /// prefix `prefix` (e.g. `"drafter.layer"`).
    pub fn update_decoder_layer(
        &mut self,
        prefix: &str,
        layer: &mut DecoderLayer,
        grads: &DecoderLayerGrads,
    ) {
        let g_attn = grads.attn_norm.clone();
        self.update_slice(
            &format!("{prefix}.attn_norm"),
            &mut layer.attn_norm,
            &g_attn,
        );
        self.update_mat(&format!("{prefix}.wq"), &mut layer.wq, &grads.wq);
        self.update_mat(&format!("{prefix}.wk"), &mut layer.wk, &grads.wk);
        self.update_mat(&format!("{prefix}.wv"), &mut layer.wv, &grads.wv);
        self.update_mat(&format!("{prefix}.wo"), &mut layer.wo, &grads.wo);
        let g_mlp = grads.mlp_norm.clone();
        self.update_slice(&format!("{prefix}.mlp_norm"), &mut layer.mlp_norm, &g_mlp);
        self.update_mat(
            &format!("{prefix}.w_gate"),
            &mut layer.w_gate,
            &grads.w_gate,
        );
        self.update_mat(&format!("{prefix}.w_up"), &mut layer.w_up, &grads.w_up);
        self.update_mat(
            &format!("{prefix}.w_down"),
            &mut layer.w_down,
            &grads.w_down,
        );
    }

    /// Approximate memory footprint of the optimizer state in bytes.
    pub fn state_bytes(&self) -> usize {
        self.moments
            .values()
            .map(|p| (p.m.len() + p.v.len()) * std::mem::size_of::<f32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::LayerConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn adam_minimises_quadratic() {
        // Minimise f(x) = sum (x_i - target_i)^2.
        let target = [1.0f32, -2.0, 0.5, 3.0];
        let mut x = [0.0f32; 4];
        let mut adam = Adam::new(AdamConfig {
            lr: 0.05,
            ..AdamConfig::default()
        });
        for _ in 0..400 {
            let grad: Vec<f32> = x
                .iter()
                .zip(&target)
                .map(|(xi, ti)| 2.0 * (xi - ti))
                .collect();
            adam.begin_step();
            adam.update_slice("x", &mut x, &grad);
        }
        for (xi, ti) in x.iter().zip(&target) {
            assert!((xi - ti).abs() < 0.05, "Adam failed to converge: {x:?}");
        }
    }

    #[test]
    fn weight_decay_shrinks_parameters() {
        let mut x = [10.0f32; 3];
        let zero_grad = [0.0f32; 3];
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.5,
            ..AdamConfig::default()
        });
        for _ in 0..50 {
            adam.begin_step();
            adam.update_slice("x", &mut x, &zero_grad);
        }
        for v in x {
            assert!(v.abs() < 10.0);
        }
    }

    #[test]
    fn update_decoder_layer_touches_all_parameters() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut layer = DecoderLayer::random(
            LayerConfig {
                hidden: 8,
                num_heads: 2,
                ffn_hidden: 8,
            },
            &mut rng,
        );
        let before = layer.clone();
        let mut grads = DecoderLayerGrads::zeros_like(&layer);
        // Non-zero gradient everywhere.
        for v in grads.attn_norm.iter_mut() {
            *v = 1.0;
        }
        for v in grads.mlp_norm.iter_mut() {
            *v = 1.0;
        }
        for m in [
            &mut grads.wq,
            &mut grads.wk,
            &mut grads.wv,
            &mut grads.wo,
            &mut grads.w_gate,
            &mut grads.w_up,
            &mut grads.w_down,
        ] {
            for v in m.as_mut_slice() {
                *v = 1.0;
            }
        }
        let mut adam = Adam::new(AdamConfig::drafter());
        adam.begin_step();
        adam.update_decoder_layer("layer", &mut layer, &grads);
        assert_ne!(before.wq, layer.wq);
        assert_ne!(before.w_down, layer.w_down);
        assert_ne!(before.attn_norm, layer.attn_norm);
        assert!(adam.state_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "call begin_step")]
    fn update_without_begin_step_panics() {
        let mut adam = Adam::new(AdamConfig::default());
        let mut x = [0.0f32];
        adam.update_slice("x", &mut x, &[1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut adam = Adam::new(AdamConfig::default());
        adam.begin_step();
        let mut x = [0.0f32; 2];
        adam.update_slice("x", &mut x, &[1.0]);
    }
}
