//! Minimal discrete-event simulation primitives.
//!
//! The timing-level simulations (rollout engine, spot trainer, end-to-end pipeline)
//! advance a virtual clock by popping events in time order. Events carry an opaque
//! payload chosen by the caller.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulated time in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(pub f64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Adds `seconds` to this time.
    pub fn after(self, seconds: f64) -> SimTime {
        SimTime(self.0 + seconds)
    }

    /// Seconds since time zero.
    pub fn seconds(self) -> f64 {
        self.0
    }
}

struct HeapEntry<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap and we want earliest-first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then(other.seq.cmp(&self.seq))
    }
}

/// An event queue ordered by simulated time (FIFO among equal times).
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    seq: u64,
    now: SimTime,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulated time (time of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is before the current simulated time (events cannot be
    /// scheduled in the past).
    pub fn schedule_at(&mut self, at: SimTime, payload: T) {
        assert!(
            at.0 >= self.now.0,
            "cannot schedule event in the past: {} < {}",
            at.0,
            self.now.0
        );
        self.heap.push(HeapEntry {
            time: at.0,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
    }

    /// Schedules `payload` `delay` seconds from the current time.
    pub fn schedule_after(&mut self, delay: f64, payload: T) {
        let at = self.now.after(delay.max(0.0));
        self.schedule_at(at, payload);
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| {
            self.now = SimTime(e.time);
            (self.now, e.payload)
        })
    }

    /// Time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| SimTime(e.time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(3.0), "c");
        q.schedule_at(SimTime(1.0), "a");
        q.schedule_at(SimTime(2.0), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(1.0), 1);
        q.schedule_at(SimTime(1.0), 2);
        q.schedule_at(SimTime(1.0), 3);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_after(5.0, ());
        assert_eq!(q.now().seconds(), 0.0);
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.seconds(), 5.0);
        assert_eq!(q.now().seconds(), 5.0);
        q.schedule_after(1.5, ());
        assert_eq!(q.peek_time().unwrap().seconds(), 6.5);
    }

    #[test]
    #[should_panic(expected = "cannot schedule event in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime(2.0), ());
        q.pop();
        q.schedule_at(SimTime(1.0), ());
    }

    #[test]
    fn negative_delay_clamped_to_now() {
        let mut q = EventQueue::new();
        q.schedule_after(-5.0, "x");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t.seconds(), 0.0);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_after(1.0, ());
        assert_eq!(q.len(), 1);
    }
}
