//! Adaptive speculative decoding on a simulated Qwen-32B rollout (the Figure 14 case
//! study): 128 requests with long-tail lengths, elastic SD activation, and BEG-MAB
//! strategy selection.
//!
//! Run with `cargo run -p tlt --release --example adaptive_sd_serving`.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt_gpusim::{GpuType, LlmCostModel};
use tlt_model::ModelSpec;
use tlt_rollout::{simulate_rollout, SdManagerConfig, SdMode, SimRolloutConfig};
use tlt_workload::LengthDistribution;

fn main() {
    let cost = LlmCostModel::new(ModelSpec::qwen2_5_32b(), GpuType::H100.spec(), 4);
    let mut rng = StdRng::seed_from_u64(14);
    let lengths = LengthDistribution::LongTailMixture {
        mu: 7.0,
        sigma: 0.9,
        truncation_mass: 0.02,
        max_len: 16_384,
    }
    .sample_many(128, &mut rng);

    let baseline = simulate_rollout(&SimRolloutConfig::vanilla(cost.clone()), &lengths);
    let adaptive = simulate_rollout(
        &SimRolloutConfig::vanilla(cost).with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        }),
        &lengths,
    );

    println!("baseline rollout : {:.0} s", baseline.total_time_s);
    println!(
        "adaptive SD       : {:.0} s ({:.2}x speedup, SD activated at t={:.0} s, mean accept length {:.2})",
        adaptive.total_time_s,
        adaptive.speedup_over(&baseline),
        adaptive.sd_activation_time_s.unwrap_or(0.0),
        adaptive.mean_accept_length
    );
    println!("\nrunning-request timeline (time s -> requests, SD?):");
    for p in adaptive
        .timeline
        .iter()
        .step_by(adaptive.timeline.len().max(16) / 16)
    {
        println!(
            "  t={:7.0}  requests={:3}  sd={}",
            p.time_s, p.running_requests, p.sd_active
        );
    }
}
