//! LLM execution cost model built on the roofline.
//!
//! Maps the phases of a reasoning-RL step — prefill, autoregressive decode,
//! speculative drafting + verification, response re-prefill (the "inference" stage),
//! and training — onto [`KernelWork`] descriptors for a given model geometry, GPU
//! type and tensor-parallel degree, and converts them to time via the roofline.

use crate::roofline::{estimate_time, ExecutionMode, KernelWork, TimeBreakdown};
use crate::specs::GpuSpec;
use serde::Serialize;
use tlt_model::spec::{DraftModelSpec, ModelSpec, BF16_BYTES};

/// Activation-workspace scale factor used by the CUDAGraph capture memory model:
/// bytes of persistent workspace per captured token ≈
/// `hidden * num_layers * ACTIVATION_FACTOR * 2 / tp`.
pub const ACTIVATION_FACTOR: f64 = 8.0;

/// Fixed per-graph overhead (instantiation metadata, pool fragmentation) in bytes.
pub const GRAPH_FIXED_BYTES: f64 = 200.0 * 1024.0 * 1024.0;

/// Host-side overhead of one drafter step (tree construction, candidate sampling,
/// token bookkeeping). It is independent of the GPU, which is why speculative
/// decoding yields a *smaller* relative speedup on faster GPUs (Table 2's trend).
pub const DRAFT_STEP_HOST_OVERHEAD_S: f64 = 60e-6;

/// Cost model for one model replica running on one tensor-parallel worker.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct LlmCostModel {
    /// Target-model geometry.
    pub model: ModelSpec,
    /// GPU the replica runs on.
    pub gpu: GpuSpec,
    /// Tensor-parallel degree (GPUs per replica).
    pub tp: usize,
    /// Execution mode (CUDAGraph on/off, efficiencies).
    pub mode: ExecutionMode,
}

impl LlmCostModel {
    /// Creates a cost model.
    ///
    /// # Panics
    ///
    /// Panics if `tp` is zero.
    pub fn new(model: ModelSpec, gpu: GpuSpec, tp: usize) -> Self {
        assert!(tp > 0, "tensor-parallel degree must be positive");
        LlmCostModel {
            model,
            gpu,
            tp,
            mode: ExecutionMode::default(),
        }
    }

    /// Uses eager (non-CUDAGraph) execution.
    pub fn with_eager_mode(mut self) -> Self {
        self.mode = ExecutionMode::eager();
        self
    }

    /// Weight bytes resident per GPU.
    pub fn weight_bytes_per_gpu(&self) -> f64 {
        self.model.weight_bytes() / self.tp as f64
    }

    /// KV-cache bytes per GPU for `batch` sequences of average length `context`.
    pub fn kv_bytes_per_gpu(&self, batch: usize, context: usize) -> f64 {
        self.model.kv_bytes_per_token() * batch as f64 * context as f64 / self.tp as f64
    }

    /// Tensor-parallel all-reduce traffic time for `tokens` token positions.
    fn tp_comm_seconds(&self, tokens: f64) -> f64 {
        if self.tp <= 1 || self.gpu.nvlink_gbps <= 0.0 {
            return 0.0;
        }
        // Two all-reduces per layer, each moving ~hidden activations per token.
        let bytes =
            2.0 * self.model.num_layers as f64 * self.model.hidden as f64 * BF16_BYTES * tokens;
        let per_gpu = bytes * 2.0 * (self.tp as f64 - 1.0) / self.tp as f64;
        per_gpu / (self.gpu.nvlink_gbps * 1e9)
    }

    /// Kernel work of one decode step producing one token per sequence.
    pub fn decode_work(&self, batch: usize, context: usize) -> KernelWork {
        let tokens = batch as f64;
        let flops = self.model.flops_per_token() * tokens / self.tp as f64;
        let bytes = self.weight_bytes_per_gpu()
            + self.kv_bytes_per_gpu(batch, context)
            + tokens * self.model.hidden as f64 * BF16_BYTES;
        // ~8 kernels per layer plus head/embedding.
        let launches = (self.model.num_layers * 8 + 4) as f64;
        KernelWork::new(flops, bytes, launches)
    }

    /// Time of one decode step.
    pub fn decode_step_time(&self, batch: usize, context: usize) -> f64 {
        let base = estimate_time(self.decode_work(batch, context), &self.gpu, self.mode);
        base.total_s + self.tp_comm_seconds(batch as f64)
    }

    /// Kernel work of verifying `tokens_per_seq` drafted tokens for every sequence in
    /// the batch in a single target forward pass.
    pub fn verify_work(&self, batch: usize, tokens_per_seq: usize, context: usize) -> KernelWork {
        let tokens = (batch * tokens_per_seq) as f64;
        let flops = self.model.flops_per_token() * tokens / self.tp as f64;
        let bytes = self.weight_bytes_per_gpu()
            + self.kv_bytes_per_gpu(batch, context)
            + tokens * self.model.hidden as f64 * BF16_BYTES;
        let launches = (self.model.num_layers * 8 + 4) as f64;
        KernelWork::new(flops, bytes, launches)
    }

    /// Time of one verification pass.
    pub fn verify_step_time(&self, batch: usize, tokens_per_seq: usize, context: usize) -> f64 {
        let base = estimate_time(
            self.verify_work(batch, tokens_per_seq, context),
            &self.gpu,
            self.mode,
        );
        base.total_s + self.tp_comm_seconds((batch * tokens_per_seq) as f64)
    }

    /// Detailed breakdown for a verification pass (used by roofline figures).
    pub fn verify_breakdown(
        &self,
        batch: usize,
        tokens_per_seq: usize,
        context: usize,
    ) -> TimeBreakdown {
        estimate_time(
            self.verify_work(batch, tokens_per_seq, context),
            &self.gpu,
            self.mode,
        )
    }

    /// Kernel work of prefilling `prompt_len` tokens for `batch` sequences.
    pub fn prefill_work(&self, batch: usize, prompt_len: usize) -> KernelWork {
        let tokens = (batch * prompt_len) as f64;
        let flops = self.model.flops_per_token() * tokens / self.tp as f64;
        let bytes = self.weight_bytes_per_gpu()
            + tokens * self.model.kv_bytes_per_token() / self.tp as f64
            + tokens * self.model.hidden as f64 * BF16_BYTES;
        let launches = (self.model.num_layers * 8 + 4) as f64;
        KernelWork::new(flops, bytes, launches)
    }

    /// Time to prefill a batch of prompts.
    pub fn prefill_time(&self, batch: usize, prompt_len: usize) -> f64 {
        let base = estimate_time(self.prefill_work(batch, prompt_len), &self.gpu, self.mode);
        base.total_s + self.tp_comm_seconds((batch * prompt_len) as f64)
    }

    /// Kernel work of prefilling only the `novel_len` tokens not already
    /// resident in the KV cache, attending over `cached_len` reused positions.
    ///
    /// Compute (FLOPs, KV writes, activations, launches) is charged for the
    /// novel tokens alone — the paged prefix cache means reused tokens are
    /// never recomputed — while the cached context costs one read of its KV
    /// bytes (the attention of every novel token walks the shared blocks).
    /// With `cached_len == 0` this is exactly [`LlmCostModel::prefill_work`].
    pub fn prefill_work_cached(
        &self,
        batch: usize,
        novel_len: usize,
        cached_len: usize,
    ) -> KernelWork {
        let tokens = (batch * novel_len) as f64;
        let flops = self.model.flops_per_token() * tokens / self.tp as f64;
        let bytes = self.weight_bytes_per_gpu()
            + tokens * self.model.kv_bytes_per_token() / self.tp as f64
            + (batch * cached_len) as f64 * self.model.kv_bytes_per_token() / self.tp as f64
            + tokens * self.model.hidden as f64 * BF16_BYTES;
        let launches = (self.model.num_layers * 8 + 4) as f64;
        KernelWork::new(flops, bytes, launches)
    }

    /// Time to prefill `novel_len` novel tokens against `cached_len` reused
    /// KV positions. Equal to [`LlmCostModel::prefill_time`] when nothing is
    /// cached, and strictly cheaper than prefilling `novel_len + cached_len`
    /// tokens from scratch otherwise.
    pub fn prefill_time_cached(&self, batch: usize, novel_len: usize, cached_len: usize) -> f64 {
        let base = estimate_time(
            self.prefill_work_cached(batch, novel_len, cached_len),
            &self.gpu,
            self.mode,
        );
        base.total_s + self.tp_comm_seconds((batch * novel_len) as f64)
    }

    /// Kernel work of one drafter decode step (one drafted token per sequence),
    /// accounting for the drafter's (possibly multi-layer) sequential depth.
    pub fn drafter_decode_work(&self, drafter: &DraftModelSpec, batch: usize) -> KernelWork {
        let tokens = batch as f64;
        let flops = drafter.flops_per_token * tokens / self.tp as f64;
        let bytes =
            drafter.weight_bytes() / self.tp as f64 + tokens * drafter.hidden as f64 * BF16_BYTES;
        let launches = (drafter.num_layers * 8 + 4) as f64;
        KernelWork::new(flops, bytes, launches)
    }

    /// Time of one drafter decode step (GPU kernels plus host-side drafting overhead).
    pub fn drafter_step_time(&self, drafter: &DraftModelSpec, batch: usize) -> f64 {
        estimate_time(
            self.drafter_decode_work(drafter, batch),
            &self.gpu,
            self.mode,
        )
        .total_s
            + DRAFT_STEP_HOST_OVERHEAD_S
    }

    /// Time of a full speculative step: `draft_depth` sequential drafter steps
    /// followed by one target verification of `tokens_to_verify` tokens per sequence.
    pub fn speculative_step_time(
        &self,
        drafter: &DraftModelSpec,
        batch: usize,
        draft_depth: usize,
        tokens_to_verify: usize,
        context: usize,
    ) -> f64 {
        let draft = self.drafter_step_time(drafter, batch) * draft_depth as f64;
        let verify = self.verify_step_time(batch, tokens_to_verify, context);
        draft + verify
    }

    /// Time of the RL "inference" stage: re-prefilling generated responses through the
    /// target and reference models to obtain logits for KL computation.
    pub fn inference_stage_time(&self, total_tokens: usize, replicas: usize) -> f64 {
        // Both target and reference model process every token once; work is spread
        // over `replicas` data-parallel workers.
        let tokens = total_tokens as f64 / replicas.max(1) as f64;
        let flops = 2.0 * self.model.flops_per_token() * tokens / self.tp as f64;
        let bytes = 2.0 * self.weight_bytes_per_gpu()
            + 2.0 * tokens * self.model.kv_bytes_per_token() / self.tp as f64;
        let work = KernelWork::new(flops, bytes, (self.model.num_layers * 16) as f64);
        estimate_time(work, &self.gpu, self.mode).total_s + self.tp_comm_seconds(2.0 * tokens)
    }

    /// Time of the RL training stage on `total_tokens` tokens spread over
    /// `num_gpus` GPUs (standard `6 * params * tokens` training-FLOPs estimate).
    pub fn training_stage_time(&self, total_tokens: usize, num_gpus: usize) -> f64 {
        let flops = 6.0 * self.model.params * total_tokens as f64 / num_gpus.max(1) as f64;
        // Optimizer states + gradients traffic, roughly 6x weight bytes per GPU.
        let bytes = 6.0 * self.model.weight_bytes() / num_gpus.max(1) as f64;
        let work = KernelWork::new(flops, bytes, (self.model.num_layers * 20) as f64);
        // Training runs in eager mode with a modestly lower efficiency.
        let mode = ExecutionMode {
            cuda_graph: false,
            compute_efficiency: 0.45,
            memory_efficiency: 0.8,
        };
        estimate_time(work, &self.gpu, mode).total_s
    }

    /// Time of one drafter training iteration on `tokens` packed tokens (per worker).
    pub fn drafter_train_step_time(&self, drafter: &DraftModelSpec, tokens: usize) -> f64 {
        let flops = 6.0 * drafter.params * tokens as f64 / self.tp as f64;
        let bytes = 6.0 * drafter.weight_bytes() / self.tp as f64;
        let work = KernelWork::new(flops, bytes, 200.0);
        let mode = ExecutionMode {
            cuda_graph: false,
            compute_efficiency: 0.45,
            memory_efficiency: 0.8,
        };
        estimate_time(work, &self.gpu, mode).total_s
    }

    /// Time to broadcast updated drafter weights to rollout workers.
    pub fn drafter_weight_update_time(&self, drafter: &DraftModelSpec) -> f64 {
        let bw = if self.gpu.nvlink_gbps > 0.0 {
            self.gpu.nvlink_gbps * 1e9
        } else {
            // PCIe fallback.
            25.0 * 1e9
        };
        drafter.weight_bytes() / bw
    }

    /// Persistent memory required to capture a CUDAGraph that executes `tokens`
    /// token positions for a batch of `batch` sequences of the *target* model.
    pub fn graph_capture_bytes(&self, batch: usize, tokens_per_seq: usize) -> f64 {
        let per_token = self.model.hidden as f64
            * self.model.num_layers as f64
            * ACTIVATION_FACTOR
            * BF16_BYTES
            / self.tp as f64;
        (batch * tokens_per_seq) as f64 * per_token + GRAPH_FIXED_BYTES
    }

    /// Persistent memory required to capture a drafter CUDAGraph.
    pub fn drafter_graph_capture_bytes(
        &self,
        drafter: &DraftModelSpec,
        batch: usize,
        tokens_per_seq: usize,
    ) -> f64 {
        let per_token =
            drafter.hidden as f64 * drafter.num_layers as f64 * ACTIVATION_FACTOR * BF16_BYTES
                / self.tp as f64;
        (batch * tokens_per_seq) as f64 * per_token + GRAPH_FIXED_BYTES / 4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::specs::GpuType;

    fn qwen7b_h100() -> LlmCostModel {
        LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1)
    }

    fn qwen32b_h100_tp4() -> LlmCostModel {
        LlmCostModel::new(ModelSpec::qwen2_5_32b(), GpuType::H100.spec(), 4)
    }

    #[test]
    fn small_batch_decode_is_memory_bound() {
        let cost = qwen7b_h100();
        let work = cost.decode_work(1, 1024);
        let t = estimate_time(work, &cost.gpu, cost.mode);
        assert!(!t.is_compute_bound(), "bs=1 decode must be memory-bound");
    }

    #[test]
    fn large_verify_becomes_compute_bound() {
        let cost = qwen7b_h100();
        let work = cost.verify_work(64, 48, 1024);
        let t = estimate_time(work, &cost.gpu, cost.mode);
        assert!(
            t.is_compute_bound(),
            "large batched verification should be compute-bound"
        );
    }

    #[test]
    fn verify_only_slightly_slower_than_decode_at_bs1() {
        // The core SD win: verifying many tokens costs nearly the same as decoding
        // one token when memory-bound.
        let cost = qwen32b_h100_tp4();
        let decode = cost.decode_step_time(1, 4096);
        let verify = cost.verify_step_time(1, 48, 4096);
        assert!(verify < decode * 1.5, "verify {verify} vs decode {decode}");
    }

    #[test]
    fn decode_time_grows_sublinearly_then_linearly_with_batch() {
        let cost = qwen7b_h100();
        let t1 = cost.decode_step_time(1, 2048);
        let t32 = cost.decode_step_time(32, 2048);
        let t256 = cost.decode_step_time(256, 2048);
        // Memory-bound region: 32x batch costs much less than 32x time.
        assert!(t32 < t1 * 8.0);
        // But time is monotonically increasing.
        assert!(t256 > t32);
        assert!(t32 > t1);
    }

    #[test]
    fn eagle_drafter_step_much_faster_than_target_decode() {
        let cost = qwen32b_h100_tp4();
        let drafter = cost.model.eagle_drafter();
        let d = cost.drafter_step_time(&drafter, 1);
        let t = cost.decode_step_time(1, 4096);
        assert!(
            d * 10.0 < t,
            "drafter step {d} should be <10% of target step {t}"
        );
    }

    #[test]
    fn eagle_drafter_faster_than_small_lm_drafter() {
        // Paper: the single-layer drafter is ~2.4x faster than Qwen2.5-0.5B despite
        // similar parameter count, because latency is dominated by sequential layers.
        let cost = qwen32b_h100_tp4();
        let eagle = cost.model.eagle_drafter();
        let small = ModelSpec::small_lm_drafter(&ModelSpec::qwen2_5_0_5b());
        let t_eagle = cost.drafter_step_time(&eagle, 1);
        let t_small = cost.drafter_step_time(&small, 1);
        assert!(
            t_small > 1.5 * t_eagle,
            "small-LM drafter {t_small} should be much slower than EAGLE {t_eagle}"
        );
    }

    #[test]
    fn speculative_step_beats_sequential_decode_at_small_batch() {
        let cost = qwen32b_h100_tp4();
        let drafter = cost.model.eagle_drafter();
        // One speculative step (depth 6, verify 48) replaces ~6 accepted tokens.
        let spec = cost.speculative_step_time(&drafter, 1, 6, 48, 4096);
        let sequential = cost.decode_step_time(1, 4096) * 6.0;
        assert!(spec < sequential, "spec {spec} vs sequential {sequential}");
    }

    #[test]
    fn low_bandwidth_gpus_gain_more_from_speculation() {
        // Table 2's trend: the speedup of SD grows as the GPU becomes more
        // bandwidth-starved relative to compute.
        let spec = ModelSpec::qwen2_5_7b();
        let accept = 5.0; // tokens per speculative step
        let ratio = |gpu: GpuType| {
            let cost = LlmCostModel::new(spec.clone(), gpu.spec(), 1);
            let drafter = cost.model.eagle_drafter();
            let vanilla = cost.decode_step_time(1, 2048);
            let spec_step = cost.speculative_step_time(&drafter, 1, 6, 48, 2048);
            accept * vanilla / spec_step
        };
        let h100 = ratio(GpuType::H100);
        let a100 = ratio(GpuType::A100);
        let rtx3090 = ratio(GpuType::Rtx3090);
        assert!(rtx3090 > a100 * 0.95, "3090 {rtx3090} vs a100 {a100}");
        assert!(a100 > h100 * 0.8, "a100 {a100} vs h100 {h100}");
    }

    #[test]
    fn cached_prefill_charges_only_novel_tokens() {
        let cost = qwen7b_h100();
        // Nothing cached: identical to the plain prefill cost.
        assert_eq!(
            cost.prefill_time_cached(1, 512, 0),
            cost.prefill_time(1, 512)
        );
        // A 512-token system prompt already resident: prefilling the 128
        // novel tokens is strictly cheaper than prefilling all 640 from
        // scratch, but dearer than 128 tokens with no context to read.
        let reused = cost.prefill_time_cached(1, 128, 512);
        assert!(reused < cost.prefill_time(1, 640));
        assert!(reused >= cost.prefill_time(1, 128));
        // More reuse never costs more.
        assert!(cost.prefill_time_cached(1, 128, 2048) >= reused);
        assert!(cost.prefill_time_cached(1, 128, 2048) < cost.prefill_time(1, 128 + 2048));
    }

    #[test]
    fn training_and_inference_stage_times_positive_and_scaling() {
        let cost = qwen7b_h100();
        let t8 = cost.training_stage_time(1_000_000, 8);
        let t64 = cost.training_stage_time(1_000_000, 64);
        assert!(t8 > t64);
        let i1 = cost.inference_stage_time(1_000_000, 1);
        let i8 = cost.inference_stage_time(1_000_000, 8);
        assert!(i1 > i8);
    }

    #[test]
    fn graph_capture_memory_scales_with_tokens_and_batch() {
        let cost = LlmCostModel::new(ModelSpec::llama3_8b(), GpuType::H100.spec(), 4);
        let small = cost.graph_capture_bytes(1, 8);
        let large = cost.graph_capture_bytes(32, 48);
        assert!(large > small);
        // A full single-strategy bucket set should land in the single-digit-GB range
        // (paper Table 5 reports 7.81 GB).
        let buckets = [1usize, 2, 4, 8, 16, 32, 64, 128];
        let total: f64 = buckets
            .iter()
            .map(|&b| cost.graph_capture_bytes(b, 48))
            .sum();
        let gb = total / 1e9;
        assert!((3.0..15.0).contains(&gb), "single-strategy pool = {gb} GB");
    }

    #[test]
    fn drafter_weight_update_is_subsecond() {
        let cost = qwen32b_h100_tp4();
        let drafter = cost.model.eagle_drafter();
        assert!(cost.drafter_weight_update_time(&drafter) < 1.0);
    }

    #[test]
    #[should_panic(expected = "tensor-parallel degree")]
    fn zero_tp_panics() {
        let _ = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 0);
    }
}
