//! Token-level end-to-end experiment: real GRPO training of the tiny target model
//! with speculative rollouts and an adaptively trained drafter.
//!
//! This is the substrate behind Figure 12 (reward curves of VeRL vs TLT), Figure 15
//! (drafter accuracy during adaptive training, with dips at target updates),
//! Figure 16 / Table 6 (accept rates of vanilla vs adaptive drafters against the
//! post-RL target). Everything here runs on the real tiny transformer: rollouts are
//! generated token by token, the drafter is trained with gradient descent on cached
//! hidden states, and the policy is updated with GRPO.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tlt_draft::{
    DataBuffer, DataBufferConfig, DraftModel, DrafterTrainer, FeatureSource, TrainerConfig,
    TrainingSample,
};
use tlt_model::{ModelConfig, SamplingParams, TinyLm, TokenId};
use tlt_rl::{PolicyTrainer, RlConfig, RolloutGroup};
use tlt_rollout::{speculative_generate, vanilla_generate, SdStrategy, SpecDrafter};
use tlt_workload::TaskGenerator;

/// Configuration of a token-level RL experiment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TokenExperimentConfig {
    /// Tiny-model architecture.
    pub model: ModelConfig,
    /// RL algorithm settings.
    pub rl: RlConfig,
    /// Number of RL steps.
    pub num_steps: usize,
    /// Prompts per step.
    pub prompts_per_step: usize,
    /// Responses per prompt (GRPO group size).
    pub group_size: usize,
    /// Maximum generated tokens per response.
    pub max_new_tokens: usize,
    /// Rollout sampling parameters.
    pub sampling: SamplingParams,
    /// Whether rollouts use speculative decoding (TLT) or vanilla decoding (VeRL).
    pub use_speculative: bool,
    /// Whether the drafter is spot-trained after every RL step (adaptive drafter).
    pub adapt_drafter: bool,
    /// Drafter training iterations per RL step.
    pub drafter_iterations_per_step: usize,
    /// Speculative strategy used by the token-level engine (chain drafting).
    pub sd_strategy: SdStrategy,
    /// Random seed.
    pub seed: u64,
}

impl TokenExperimentConfig {
    /// A small configuration suitable for tests and the quickstart example.
    pub fn small(use_speculative: bool, adapt_drafter: bool) -> Self {
        TokenExperimentConfig {
            model: ModelConfig::micro(),
            rl: RlConfig::default(),
            num_steps: 3,
            prompts_per_step: 6,
            group_size: 4,
            max_new_tokens: 24,
            sampling: SamplingParams {
                temperature: 0.9,
                top_k: None,
            },
            use_speculative,
            adapt_drafter,
            drafter_iterations_per_step: 6,
            sd_strategy: SdStrategy {
                draft_depth: 4,
                top_k: 1,
                tokens_to_verify: 4,
            },
            seed: 7,
        }
    }
}

/// One point of the drafter accuracy curve (Figure 15).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrafterAccuracyPoint {
    /// Cumulative drafter-training iteration.
    pub iteration: u64,
    /// Top-3 next-token accuracy against held-out rollout data.
    pub top3_accuracy: f64,
    /// Whether this point was measured immediately after a target-model update
    /// (where the paper observes a temporary dip).
    pub after_target_update: bool,
}

/// Report of a token-level experiment.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TokenExperimentReport {
    /// Mean rule-based reward per RL step (Figure 12's curve).
    pub reward_curve: Vec<f64>,
    /// Mean per-token KL from the reference model per step.
    pub kl_curve: Vec<f64>,
    /// Mean response length per step.
    pub response_len_curve: Vec<f64>,
    /// Mean accept length per RL step (speculative runs only; 1.0 otherwise).
    pub accept_length_curve: Vec<f64>,
    /// Drafter accuracy trajectory (adaptive runs only).
    pub drafter_accuracy: Vec<DrafterAccuracyPoint>,
    /// Total wall-clock target forward passes spent in rollout (a hardware-free
    /// proxy for rollout cost: speculative decoding reduces it).
    pub rollout_target_steps: usize,
    /// Total tokens generated across all rollouts.
    pub generated_tokens: usize,
}

/// Runs the token-level experiment and returns its report together with the final
/// target model and drafter (for follow-up acceptance measurements).
pub fn run_token_experiment(
    config: &TokenExperimentConfig,
) -> (TokenExperimentReport, TinyLm, DraftModel) {
    let mut target = TinyLm::new(config.model, config.seed);
    let reference = target.reference_copy();
    let mut policy_trainer = PolicyTrainer::new(reference, config.rl);
    let mut drafter_trainer =
        DrafterTrainer::new(&target, TrainerConfig::default(), config.seed + 1);
    let mut buffer = DataBuffer::new(DataBufferConfig {
        retained_long_samples: 16,
        ..DataBufferConfig::default()
    });
    let mut task_gen = TaskGenerator::new(config.model.vocab_size);
    let vocab = task_gen.vocabulary();
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut report = TokenExperimentReport {
        reward_curve: Vec::new(),
        kl_curve: Vec::new(),
        response_len_curve: Vec::new(),
        accept_length_curve: Vec::new(),
        drafter_accuracy: Vec::new(),
        rollout_target_steps: 0,
        generated_tokens: 0,
    };

    for step in 0..config.num_steps {
        let tasks = task_gen.generate_batch(config.prompts_per_step, &mut rng);

        // --- Rollout stage ---
        let mut groups = Vec::with_capacity(tasks.len());
        let mut accept_sum = 0.0;
        let mut accept_count = 0usize;
        for task in &tasks {
            let prompt = task.prompt_tokens();
            let mut responses = Vec::with_capacity(config.group_size);
            let mut rewards = Vec::with_capacity(config.group_size);
            for _ in 0..config.group_size {
                let result = if config.use_speculative {
                    speculative_generate(
                        &target,
                        &SpecDrafter::Learned(&drafter_trainer.drafter),
                        &prompt,
                        config.max_new_tokens,
                        config.sd_strategy,
                        config.sampling,
                        Some(vocab.eos()),
                        &mut rng,
                    )
                } else {
                    vanilla_generate(
                        &target,
                        &prompt,
                        config.max_new_tokens,
                        config.sampling,
                        Some(vocab.eos()),
                        &mut rng,
                    )
                };
                report.rollout_target_steps += result.target_steps;
                report.generated_tokens += result.tokens.len();
                if !result.accept_lengths.is_empty() {
                    accept_sum += result.mean_accept_length();
                    accept_count += 1;
                }
                rewards.push(task.reward(&result.tokens));
                responses.push(result.tokens);
            }
            groups.push(RolloutGroup {
                prompt,
                responses,
                rewards,
            });
        }
        report.accept_length_curve.push(if accept_count == 0 {
            1.0
        } else {
            accept_sum / accept_count as f64
        });

        // --- Spot drafter training on rollout by-products (idle-bubble work) ---
        if config.adapt_drafter {
            for (i, group) in groups.iter().enumerate().take(4) {
                if let Some(response) = group.responses.iter().max_by_key(|r| r.len()) {
                    if response.len() >= 3 {
                        let mut tokens: Vec<TokenId> = group.prompt.clone();
                        tokens.extend_from_slice(response);
                        buffer.push(TrainingSample::from_rollout(
                            &target,
                            FeatureSource::LastLayer,
                            &tokens,
                            response.len(),
                            step as u64,
                            i as u64,
                        ));
                    }
                }
            }
            for _ in 0..config.drafter_iterations_per_step {
                let batch = buffer.sample_batch(4, &mut rng);
                if let Some(metrics) = drafter_trainer.train_iteration(&target, &batch) {
                    report.drafter_accuracy.push(DrafterAccuracyPoint {
                        iteration: metrics.iteration,
                        top3_accuracy: metrics.top3_accuracy,
                        after_target_update: false,
                    });
                }
            }
            buffer.advance_step();
        }

        // --- Inference + training stages (policy update) ---
        let metrics = policy_trainer.train_step(&mut target, &groups);
        report.reward_curve.push(metrics.mean_reward);
        report.kl_curve.push(metrics.mean_kl);
        report.response_len_curve.push(metrics.mean_response_len);

        // Measure the drafter's accuracy right after the target drifted: this is the
        // "dip" of Figure 15.
        if config.adapt_drafter {
            let eval_batch = buffer.sample_batch(4, &mut rng);
            if !eval_batch.is_empty() {
                let (_, top3) = drafter_trainer.evaluate(&target, &eval_batch);
                report.drafter_accuracy.push(DrafterAccuracyPoint {
                    iteration: drafter_trainer.iterations(),
                    top3_accuracy: top3,
                    after_target_update: true,
                });
            }
        }
    }

    (report, target, drafter_trainer.drafter)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vanilla_and_speculative_experiments_produce_comparable_rewards() {
        // Figure 12's claim, at tiny scale: using speculative rollouts does not change
        // the learning signal (rewards stay in the same range and are finite).
        let (verl, _, _) = run_token_experiment(&TokenExperimentConfig::small(false, false));
        let (tlt, _, _) = run_token_experiment(&TokenExperimentConfig::small(true, true));
        assert_eq!(verl.reward_curve.len(), tlt.reward_curve.len());
        for (a, b) in verl.reward_curve.iter().zip(tlt.reward_curve.iter()) {
            assert!((0.0..=1.0).contains(a));
            assert!((0.0..=1.0).contains(b));
        }
        assert!(tlt.generated_tokens > 0);
        assert!(verl.generated_tokens > 0);
    }

    #[test]
    fn speculative_rollouts_use_fewer_target_steps_per_token() {
        let (verl, _, _) = run_token_experiment(&TokenExperimentConfig::small(false, false));
        let (tlt, _, _) = run_token_experiment(&TokenExperimentConfig::small(true, true));
        let verl_steps_per_token = verl.rollout_target_steps as f64 / verl.generated_tokens as f64;
        let tlt_steps_per_token = tlt.rollout_target_steps as f64 / tlt.generated_tokens as f64;
        assert!(
            tlt_steps_per_token < verl_steps_per_token,
            "speculative decoding should reduce target steps per token: {tlt_steps_per_token:.3} vs {verl_steps_per_token:.3}"
        );
    }

    #[test]
    fn adaptive_run_produces_drafter_accuracy_curve() {
        let (report, _, drafter) = run_token_experiment(&TokenExperimentConfig::small(true, true));
        assert!(!report.drafter_accuracy.is_empty());
        assert!(report
            .drafter_accuracy
            .iter()
            .any(|p| p.after_target_update));
        assert!(report
            .drafter_accuracy
            .iter()
            .any(|p| !p.after_target_update));
        assert!(drafter.version > 0, "drafter must have been updated");
        // Accept lengths are recorded for speculative runs.
        assert!(report.accept_length_curve.iter().all(|&a| a >= 1.0));
    }

    #[test]
    fn non_adaptive_run_has_no_drafter_curve() {
        let (report, _, drafter) =
            run_token_experiment(&TokenExperimentConfig::small(false, false));
        assert!(report.drafter_accuracy.is_empty());
        assert_eq!(drafter.version, 0);
        assert!(report
            .accept_length_curve
            .iter()
            .all(|&a| (a - 1.0).abs() < 1e-9));
    }
}
