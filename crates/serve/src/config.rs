//! Serving-subsystem configuration.

use crate::balancer::BalancerPolicy;
use crate::metrics::SloSpec;
use serde::Serialize;
use tlt_draft::AcceptanceProfile;
use tlt_gpusim::LlmCostModel;
use tlt_model::DraftModelSpec;
use tlt_rollout::SdMode;

/// How a replica accounts KV memory at admission time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum KvAccounting {
    /// Legacy flat token budget: every request charges its full token
    /// footprint; identical prefixes are charged once per request.
    Tokens,
    /// Paged block accounting: footprints round up to whole blocks, shared
    /// prefixes are charged once per replica (PagedAttention-style), prefill
    /// only pays for tokens not already resident, and preemption/admission
    /// operate in block units.
    Paged {
        /// Tokens per KV block.
        block_size: usize,
    },
}

impl KvAccounting {
    /// The block size, if paged.
    pub fn block_size(&self) -> Option<usize> {
        match self {
            KvAccounting::Tokens => None,
            KvAccounting::Paged { block_size } => Some(*block_size),
        }
    }
}

/// Configuration of a multi-replica serving deployment.
///
/// Every replica is one tensor-parallel instance of the target model described by
/// `cost`; the frontend spreads arriving requests over `num_replicas` of them.
#[derive(Debug, Clone, Serialize)]
pub struct ServeConfig {
    /// Cost model of one replica (model geometry + GPU + TP degree).
    pub cost: LlmCostModel,
    /// Drafter geometry used by speculative steps.
    pub drafter: DraftModelSpec,
    /// Acceptance profile of the learned drafter.
    pub acceptance: AcceptanceProfile,
    /// Acceptance profile of the model-free fallback drafter.
    pub model_free_acceptance: AcceptanceProfile,
    /// Number of replicas behind the frontend.
    pub num_replicas: usize,
    /// Request routing policy.
    pub balancer: BalancerPolicy,
    /// Speculative-decoding policy applied per decode step on every replica.
    pub sd_mode: SdMode,
    /// Fraction of GPU memory usable for weights + KV cache (the rest is
    /// activations, CUDAGraph pools, fragmentation).
    pub kv_memory_fraction: f64,
    /// Hard cap on concurrently running requests per replica.
    pub max_running_requests: usize,
    /// Maximum prompt tokens packed into one prefill step (chunking bound).
    pub max_prefill_tokens: usize,
    /// Upper bound on output tokens per request; conservative admission reserves
    /// KV space for this worst case.
    pub max_output_tokens: usize,
    /// Optimistic admission with preemption: admit on current footprint and evict
    /// the most recently admitted request when KV overflows (vLLM-style recompute).
    /// When false, admission reserves `prompt + max_output_tokens` up front.
    pub preemption: bool,
    /// KV accounting granularity (flat tokens or paged blocks with prefix
    /// sharing).
    pub kv_accounting: KvAccounting,
    /// Latency SLO used for goodput accounting.
    pub slo: SloSpec,
    /// Seed for the per-replica tuner exploration streams.
    pub seed: u64,
    /// Per-replica cost-model overrides for heterogeneous fleets, as
    /// `(replica_index, cost_model)` pairs. Replicas not listed use `cost`.
    /// Later entries for the same index win.
    pub replica_overrides: Vec<(usize, LlmCostModel)>,
}

impl ServeConfig {
    /// A serving deployment with sensible defaults: SD disabled, join-shortest-queue
    /// routing, conservative KV admission.
    pub fn new(cost: LlmCostModel, num_replicas: usize) -> Self {
        assert!(num_replicas > 0, "need at least one replica");
        let drafter = cost.model.eagle_drafter();
        ServeConfig {
            cost,
            drafter,
            acceptance: AcceptanceProfile::adaptive_drafter(),
            model_free_acceptance: AcceptanceProfile::model_free_drafter(),
            num_replicas,
            balancer: BalancerPolicy::JoinShortestQueue,
            sd_mode: SdMode::Disabled,
            kv_memory_fraction: 0.9,
            max_running_requests: 256,
            max_prefill_tokens: 8192,
            max_output_tokens: 4096,
            preemption: false,
            kv_accounting: KvAccounting::Tokens,
            slo: SloSpec::interactive(),
            seed: 0,
            replica_overrides: Vec::new(),
        }
    }

    /// Same configuration with a different SD mode.
    pub fn with_sd_mode(mut self, sd_mode: SdMode) -> Self {
        self.sd_mode = sd_mode;
        self
    }

    /// Same configuration with a different balancer policy.
    pub fn with_balancer(mut self, balancer: BalancerPolicy) -> Self {
        self.balancer = balancer;
        self
    }

    /// Same configuration with optimistic admission + preemption enabled.
    pub fn with_preemption(mut self) -> Self {
        self.preemption = true;
        self
    }

    /// Same configuration with paged (block-granular) KV accounting.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn with_paged_kv(mut self, block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be non-zero");
        self.kv_accounting = KvAccounting::Paged { block_size };
        self
    }

    /// Same configuration with replica `index` running on a different cost
    /// model (heterogeneous fleet). The model geometry normally stays shared;
    /// only the hardware half differs between replicas.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for `num_replicas`.
    pub fn with_replica_cost(mut self, index: usize, cost: LlmCostModel) -> Self {
        assert!(
            index < self.num_replicas,
            "replica override index {index} out of range for {} replicas",
            self.num_replicas
        );
        self.replica_overrides.push((index, cost));
        self
    }

    /// The cost model replica `index` runs with: its override when one is
    /// registered, the fleet-wide `cost` otherwise.
    pub fn cost_for(&self, index: usize) -> &LlmCostModel {
        self.replica_overrides
            .iter()
            .rev()
            .find(|(i, _)| *i == index)
            .map(|(_, c)| c)
            .unwrap_or(&self.cost)
    }

    /// KV capacity of one replica in blocks under paged accounting (the token
    /// budget divided by the block size; zero under token accounting).
    pub fn kv_block_budget(&self) -> usize {
        match self.kv_accounting {
            KvAccounting::Tokens => 0,
            KvAccounting::Paged { block_size } => self.kv_token_budget() / block_size,
        }
    }

    /// KV-cache capacity of one replica, in tokens: the memory left after weights
    /// across the replica's `tp` GPUs, divided by the per-token KV footprint.
    ///
    /// # Panics
    ///
    /// Panics if the model's weights alone exceed the usable memory.
    pub fn kv_token_budget(&self) -> usize {
        let usable = self.cost.gpu.memory_bytes() * self.cost.tp as f64 * self.kv_memory_fraction;
        let left = usable - self.cost.model.weight_bytes();
        assert!(
            left > 0.0,
            "model weights do not fit the replica's GPU memory"
        );
        (left / self.cost.model.kv_bytes_per_token()) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tlt_gpusim::GpuType;
    use tlt_model::ModelSpec;

    fn qwen7b_h100() -> LlmCostModel {
        LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 1)
    }

    #[test]
    fn kv_budget_is_large_but_finite() {
        let config = ServeConfig::new(qwen7b_h100(), 2);
        let budget = config.kv_token_budget();
        // 7B on an 80 GB H100: hundreds of thousands of KV tokens.
        assert!(budget > 100_000, "budget {budget}");
        assert!(budget < 10_000_000, "budget {budget}");
    }

    #[test]
    fn kv_budget_scales_with_tp() {
        let tp1 = ServeConfig::new(qwen7b_h100(), 1).kv_token_budget();
        let tp2 = ServeConfig::new(
            LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::H100.spec(), 2),
            1,
        )
        .kv_token_budget();
        assert!(tp2 > tp1);
    }

    #[test]
    fn replica_overrides_resolve_per_index() {
        let a100 = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::A100.spec(), 1);
        let config = ServeConfig::new(qwen7b_h100(), 3).with_replica_cost(1, a100.clone());
        assert_eq!(config.cost_for(0).gpu.gpu_type, GpuType::H100);
        assert_eq!(config.cost_for(1).gpu.gpu_type, GpuType::A100);
        assert_eq!(config.cost_for(2).gpu.gpu_type, GpuType::H100);
        // Later overrides for the same index win.
        let config = config.with_replica_cost(1, qwen7b_h100());
        assert_eq!(config.cost_for(1).gpu.gpu_type, GpuType::H100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn replica_override_index_out_of_range_panics() {
        let a100 = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::A100.spec(), 1);
        let _ = ServeConfig::new(qwen7b_h100(), 2).with_replica_cost(2, a100);
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn oversized_model_panics() {
        let config = ServeConfig::new(
            LlmCostModel::new(ModelSpec::qwen2_5_32b(), GpuType::Rtx3090.spec(), 1),
            1,
        );
        let _ = config.kv_token_budget();
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let _ = ServeConfig::new(qwen7b_h100(), 0);
    }
}
