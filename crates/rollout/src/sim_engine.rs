//! Timing-level rollout engine.
//!
//! Simulates the generation phase of one RL step for a *full-size* model (Qwen-7B/32B,
//! Llama-70B, ...) on a given GPU: a batch of requests with long-tail target lengths
//! is decoded with continuous batching, and the Adaptive SD Manager decides per step
//! whether to run vanilla decoding or speculative decoding (and with which strategy).
//! Kernel times come from the roofline cost model and acceptance lengths from the
//! drafter's [`AcceptanceProfile`], so the engine reproduces the paper's throughput
//! tables (2, 4), the hyperparameter sweeps (Figure 13, Table 1) and the adaptive-SD
//! case study (Figure 14).

use crate::mab::StepObservation;
use crate::manager::{AdaptiveSdManager, DrafterChoice, SdDecision, SdManagerConfig};
use crate::spec::SdStrategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use tlt_draft::AcceptanceProfile;
use tlt_gpusim::LlmCostModel;
use tlt_model::DraftModelSpec;

/// How the rollout engine uses speculative decoding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SdMode {
    /// Vanilla decoding only (the VeRL-like baseline).
    Disabled,
    /// A single static strategy applied whenever the batch is below the threshold.
    Static {
        /// The strategy to apply.
        strategy: SdStrategy,
        /// Elastic activation threshold (requests).
        threshold: usize,
    },
    /// Full adaptive behaviour: elastic activation + BEG-MAB strategy selection.
    Adaptive {
        /// Manager configuration.
        config: SdManagerConfig,
    },
}

/// Configuration of a simulated rollout.
#[derive(Debug, Clone)]
pub struct SimRolloutConfig {
    /// Target-model cost model (model geometry + GPU + TP).
    pub cost: LlmCostModel,
    /// Drafter geometry.
    pub drafter: DraftModelSpec,
    /// Acceptance profile of the drafter against the current target.
    pub acceptance: AcceptanceProfile,
    /// Acceptance profile of the model-free drafter (used when the learned drafter
    /// is unavailable).
    pub model_free_acceptance: AcceptanceProfile,
    /// Prompt length per request.
    pub prompt_len: usize,
    /// SD usage mode.
    pub sd_mode: SdMode,
    /// RNG seed for the tuner's exploration.
    pub seed: u64,
}

impl SimRolloutConfig {
    /// A convenient baseline configuration (SD disabled).
    pub fn vanilla(cost: LlmCostModel) -> Self {
        let drafter = cost.model.eagle_drafter();
        SimRolloutConfig {
            cost,
            drafter,
            acceptance: AcceptanceProfile::adaptive_drafter(),
            model_free_acceptance: AcceptanceProfile::model_free_drafter(),
            prompt_len: 512,
            sd_mode: SdMode::Disabled,
            seed: 0,
        }
    }

    /// Same configuration with a different SD mode.
    pub fn with_sd_mode(mut self, mode: SdMode) -> Self {
        self.sd_mode = mode;
        self
    }
}

/// A point of the running-request timeline (Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Simulated time in seconds.
    pub time_s: f64,
    /// Number of requests still generating.
    pub running_requests: usize,
    /// Whether speculative decoding was active during this step.
    pub sd_active: bool,
}

/// Result of simulating one rollout.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RolloutProfile {
    /// Total rollout wall-clock time in seconds.
    pub total_time_s: f64,
    /// Total generated tokens across all requests.
    pub total_tokens: usize,
    /// Tokens per second across the whole rollout.
    pub throughput_tokens_per_s: f64,
    /// Simulated time at which SD first activated, if it ever did.
    pub sd_activation_time_s: Option<f64>,
    /// Per-step timeline (downsampled: one point per recorded step).
    pub timeline: Vec<TimelinePoint>,
    /// GPU-seconds of idle time accumulated by completed requests waiting for the
    /// longest request (the "under-utilised zone" harvested by the spot trainer).
    pub idle_request_seconds: f64,
    /// Mean accept length across speculative steps (1.0 when SD never ran).
    pub mean_accept_length: f64,
}

impl RolloutProfile {
    /// Speedup of this profile relative to `baseline` (total-time ratio).
    pub fn speedup_over(&self, baseline: &RolloutProfile) -> f64 {
        if self.total_time_s <= 0.0 {
            1.0
        } else {
            baseline.total_time_s / self.total_time_s
        }
    }
}

/// Simulates decoding a batch of requests whose response lengths are given.
pub fn simulate_rollout(config: &SimRolloutConfig, response_lengths: &[usize]) -> RolloutProfile {
    assert!(!response_lengths.is_empty(), "need at least one request");
    let mut remaining: Vec<f64> = response_lengths.iter().map(|&l| l.max(1) as f64).collect();
    let mut generated: Vec<f64> = vec![0.0; remaining.len()];
    let total_target_tokens: usize = response_lengths.iter().sum();
    let mut manager = match &config.sd_mode {
        SdMode::Adaptive { config: mc } => Some(AdaptiveSdManager::new(*mc)),
        _ => None,
    };
    let mut rng = StdRng::seed_from_u64(config.seed);

    let mut time_s = 0.0;
    let mut timeline = Vec::new();
    let mut sd_activation_time = None;
    let mut idle_request_seconds = 0.0;
    let mut accept_len_sum = 0.0;
    let mut accept_len_count = 0usize;
    let mut steps = 0u64;

    // Prompt prefill for the whole batch.
    time_s += config.cost.prefill_time(remaining.len(), config.prompt_len);

    loop {
        let active: Vec<usize> = remaining
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| (r > 0.0).then_some(i))
            .collect();
        if active.is_empty() {
            break;
        }
        let batch = active.len();
        let avg_context = config.prompt_len
            + (active.iter().map(|&i| generated[i]).sum::<f64>() / batch as f64) as usize;

        // Decide how to decode this step.
        let decision = match &config.sd_mode {
            SdMode::Disabled => SdDecision::Vanilla,
            SdMode::Static {
                strategy,
                threshold,
            } => {
                if batch <= *threshold {
                    SdDecision::Speculative {
                        drafter: DrafterChoice::Learned,
                        strategy: *strategy,
                    }
                } else {
                    SdDecision::Vanilla
                }
            }
            SdMode::Adaptive { .. } => manager
                .as_mut()
                .expect("manager present in adaptive mode")
                .decide(batch, &mut rng),
        };

        let (step_time, tokens_per_seq, sd_active) = match decision {
            SdDecision::Vanilla => (config.cost.decode_step_time(batch, avg_context), 1.0, false),
            SdDecision::Speculative { drafter, strategy } => {
                let profile = match drafter {
                    DrafterChoice::Learned => &config.acceptance,
                    DrafterChoice::ModelFree => &config.model_free_acceptance,
                };
                let accept = profile.expected_accept_len_tree(
                    strategy.draft_depth,
                    strategy.top_k,
                    strategy.tokens_to_verify,
                );
                let t = config.cost.speculative_step_time(
                    &config.drafter,
                    batch,
                    strategy.draft_depth,
                    strategy.tokens_to_verify,
                    avg_context,
                );
                if let Some(m) = manager.as_mut() {
                    m.record(
                        &strategy,
                        StepObservation {
                            elapsed_s: t,
                            accepted_tokens: (accept - 1.0) * batch as f64,
                            batch_size: batch,
                        },
                    );
                }
                accept_len_sum += accept;
                accept_len_count += 1;
                (t, accept, true)
            }
        };
        if sd_active && sd_activation_time.is_none() {
            sd_activation_time = Some(time_s);
        }

        // Idle accounting: requests already finished wait for the stragglers.
        let finished = remaining.len() - batch;
        idle_request_seconds += finished as f64 * step_time;

        for &i in &active {
            let committed = tokens_per_seq.min(remaining[i]);
            remaining[i] -= committed;
            generated[i] += committed;
        }
        time_s += step_time;
        steps += 1;

        // Record a timeline point roughly every simulated second of progress (and on
        // every change of SD activation) to keep profiles compact.
        let record = timeline.last().is_none_or(|p: &TimelinePoint| {
            time_s - p.time_s > 1.0 || p.sd_active != sd_active || p.running_requests != batch
        });
        if record {
            timeline.push(TimelinePoint {
                time_s,
                running_requests: batch,
                sd_active,
            });
        }
        // Safety valve against pathological configurations.
        if steps > 20_000_000 {
            break;
        }
    }

    RolloutProfile {
        total_time_s: time_s,
        total_tokens: total_target_tokens,
        throughput_tokens_per_s: total_target_tokens as f64 / time_s.max(1e-9),
        sd_activation_time_s: sd_activation_time,
        timeline,
        idle_request_seconds,
        mean_accept_length: if accept_len_count == 0 {
            1.0
        } else {
            accept_len_sum / accept_len_count as f64
        },
    }
}

/// Simulates many independent rollouts on the shared worker pool
/// ([`tlt_model::parallel_map`]), one per response-length group.
///
/// Group `i` runs with `config.seed + i` so every group has an independent,
/// reproducible exploration stream; profiles are merged back in group order, making
/// the result identical to a sequential loop over [`simulate_rollout`] with the
/// same per-group seeds, regardless of worker count.
pub fn simulate_rollout_batch(
    config: &SimRolloutConfig,
    response_length_groups: &[Vec<usize>],
) -> Vec<RolloutProfile> {
    let groups: Vec<&[usize]> = response_length_groups.iter().map(Vec::as_slice).collect();
    tlt_model::parallel_map(groups, |i, lengths| {
        let mut group_config = config.clone();
        group_config.seed = config.seed.wrapping_add(i as u64);
        simulate_rollout(&group_config, lengths)
    })
}

/// Speedup of speculative decoding over vanilla decoding at a *fixed* batch size,
/// reproducing the grid of Table 4 / Figure 13(b): every request in the batch decodes
/// the same number of tokens, with and without SD.
pub fn fixed_batch_speedup(
    cost: &LlmCostModel,
    drafter: &DraftModelSpec,
    acceptance: &AcceptanceProfile,
    batch: usize,
    strategy: SdStrategy,
    context: usize,
) -> f64 {
    let accept = acceptance.expected_accept_len_tree(
        strategy.draft_depth,
        strategy.top_k,
        strategy.tokens_to_verify,
    );
    let vanilla_time_per_token = cost.decode_step_time(batch, context);
    let spec_time = cost.speculative_step_time(
        drafter,
        batch,
        strategy.draft_depth,
        strategy.tokens_to_verify,
        context,
    );
    accept * vanilla_time_per_token / spec_time
}

/// Rollout throughput (tokens/s) of a single request decoded to `response_len`
/// tokens with and without SD, reproducing Table 2's per-GPU comparison.
pub fn single_request_throughput(
    cost: &LlmCostModel,
    drafter: &DraftModelSpec,
    acceptance: &AcceptanceProfile,
    strategy: SdStrategy,
    prompt_len: usize,
    response_len: usize,
) -> (f64, f64) {
    let config_sd = SimRolloutConfig {
        cost: cost.clone(),
        drafter: drafter.clone(),
        acceptance: acceptance.clone(),
        model_free_acceptance: AcceptanceProfile::model_free_drafter(),
        prompt_len,
        sd_mode: SdMode::Static {
            strategy,
            threshold: usize::MAX,
        },
        seed: 0,
    };
    let config_vanilla = SimRolloutConfig {
        sd_mode: SdMode::Disabled,
        ..config_sd.clone()
    };
    let with_sd = simulate_rollout(&config_sd, &[response_len]);
    let without_sd = simulate_rollout(&config_vanilla, &[response_len]);
    (
        with_sd.throughput_tokens_per_s,
        without_sd.throughput_tokens_per_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tlt_gpusim::GpuType;
    use tlt_model::ModelSpec;
    use tlt_workload::LengthDistribution;

    fn qwen32b_cost() -> LlmCostModel {
        LlmCostModel::new(ModelSpec::qwen2_5_32b(), GpuType::H100.spec(), 4)
    }

    fn longtail_lengths(n: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = LengthDistribution::LongTailMixture {
            mu: 6.5,
            sigma: 0.8,
            truncation_mass: 0.03,
            max_len: 8192,
        };
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn adaptive_sd_beats_vanilla_on_longtail_batch() {
        let cost = qwen32b_cost();
        let lengths = longtail_lengths(128, 1);
        let vanilla = simulate_rollout(&SimRolloutConfig::vanilla(cost.clone()), &lengths);
        let adaptive = simulate_rollout(
            &SimRolloutConfig::vanilla(cost).with_sd_mode(SdMode::Adaptive {
                config: SdManagerConfig::default(),
            }),
            &lengths,
        );
        let speedup = adaptive.speedup_over(&vanilla);
        assert!(
            speedup > 1.5,
            "adaptive SD should give a sizeable rollout speedup, got {speedup:.2}x"
        );
        assert!(adaptive.sd_activation_time_s.is_some());
        assert!(adaptive.mean_accept_length > 2.0);
    }

    #[test]
    fn sd_activates_only_after_batch_drains_below_threshold() {
        // Figure 14: with 128 requests the early phase runs without SD, and SD kicks
        // in once the running-request count crosses the elastic threshold.
        let cost = qwen32b_cost();
        let lengths = longtail_lengths(128, 2);
        let profile = simulate_rollout(
            &SimRolloutConfig::vanilla(cost).with_sd_mode(SdMode::Adaptive {
                config: SdManagerConfig::default(),
            }),
            &lengths,
        );
        let activation = profile.sd_activation_time_s.expect("SD activated");
        assert!(activation > 0.0);
        // At activation time the running-request count must be at or below the threshold.
        let at_activation = profile
            .timeline
            .iter()
            .find(|p| p.sd_active)
            .expect("an SD-active timeline point");
        assert!(at_activation.running_requests <= 32);
        // Early timeline points (large batch) must not have SD active.
        assert!(profile
            .timeline
            .iter()
            .take_while(|p| p.running_requests > 32)
            .all(|p| !p.sd_active));
    }

    #[test]
    fn running_requests_monotonically_decrease() {
        let cost = qwen32b_cost();
        let lengths = longtail_lengths(64, 3);
        let profile = simulate_rollout(&SimRolloutConfig::vanilla(cost), &lengths);
        let mut prev = usize::MAX;
        for p in &profile.timeline {
            assert!(p.running_requests <= prev);
            prev = p.running_requests;
        }
        assert!(profile.idle_request_seconds > 0.0);
    }

    #[test]
    fn table4_shape_speedup_decreases_with_batch_size() {
        let cost = qwen32b_cost();
        let drafter = cost.model.eagle_drafter();
        let acceptance = AcceptanceProfile::adaptive_drafter();
        let strategy = SdStrategy {
            draft_depth: 10,
            top_k: 8,
            tokens_to_verify: 48,
        };
        let s1 = fixed_batch_speedup(&cost, &drafter, &acceptance, 1, strategy, 4096);
        let s8 = fixed_batch_speedup(&cost, &drafter, &acceptance, 8, strategy, 4096);
        let s32 = fixed_batch_speedup(&cost, &drafter, &acceptance, 32, strategy, 4096);
        assert!(s1 > s8, "bs1 {s1:.2} should beat bs8 {s8:.2}");
        assert!(s8 > s32, "bs8 {s8:.2} should beat bs32 {s32:.2}");
        assert!(s1 > 2.0, "bs=1 speedup should be >2x, got {s1:.2}");
        assert!(s32 > 1.0, "SD should still help at bs=32, got {s32:.2}");
    }

    #[test]
    fn table4_shape_large_batches_prefer_fewer_verify_tokens() {
        let cost = qwen32b_cost();
        let drafter = cost.model.eagle_drafter();
        let acceptance = AcceptanceProfile::adaptive_drafter();
        let mk = |verify| SdStrategy {
            draft_depth: 10,
            top_k: 8,
            tokens_to_verify: verify,
        };
        // At batch 32 a small verification budget wins; at batch 1 a large one wins.
        let small_batch_big_verify =
            fixed_batch_speedup(&cost, &drafter, &acceptance, 1, mk(64), 4096);
        let small_batch_small_verify =
            fixed_batch_speedup(&cost, &drafter, &acceptance, 1, mk(16), 4096);
        assert!(small_batch_big_verify > small_batch_small_verify);
        let big_batch_big_verify =
            fixed_batch_speedup(&cost, &drafter, &acceptance, 32, mk(64), 4096);
        let big_batch_small_verify =
            fixed_batch_speedup(&cost, &drafter, &acceptance, 32, mk(16), 4096);
        assert!(big_batch_small_verify > big_batch_big_verify);
    }

    #[test]
    fn table2_shape_weaker_gpus_gain_more() {
        let spec = ModelSpec::qwen2_5_7b();
        let strategy = SdStrategy {
            draft_depth: 8,
            top_k: 8,
            tokens_to_verify: 48,
        };
        let acceptance = AcceptanceProfile::adaptive_drafter();
        let ratio = |gpu: GpuType| {
            let cost = LlmCostModel::new(spec.clone(), gpu.spec(), 1);
            let drafter = cost.model.eagle_drafter();
            let (with_sd, without) =
                single_request_throughput(&cost, &drafter, &acceptance, strategy, 256, 2048);
            with_sd / without
        };
        let h100 = ratio(GpuType::H100);
        let rtx3090 = ratio(GpuType::Rtx3090);
        assert!(h100 > 1.8, "H100 SD speedup {h100:.2}");
        assert!(
            rtx3090 > h100,
            "3090 {rtx3090:.2} should gain more than H100 {h100:.2}"
        );
    }

    #[test]
    fn static_sd_with_threshold_behaves_like_elastic() {
        let cost = qwen32b_cost();
        let lengths = longtail_lengths(64, 4);
        let static_mode = SimRolloutConfig::vanilla(cost).with_sd_mode(SdMode::Static {
            strategy: SdStrategy::default(),
            threshold: 16,
        });
        let profile = simulate_rollout(&static_mode, &lengths);
        for p in profile.timeline.iter().filter(|p| p.sd_active) {
            assert!(p.running_requests <= 16);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cost = qwen32b_cost();
        let lengths = longtail_lengths(32, 5);
        let config = SimRolloutConfig::vanilla(cost).with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        });
        let a = simulate_rollout(&config, &lengths);
        let b = simulate_rollout(&config, &lengths);
        assert_eq!(a.total_time_s, b.total_time_s);
        assert_eq!(a.timeline.len(), b.timeline.len());
    }

    #[test]
    fn batch_simulation_matches_sequential_per_group_seeds() {
        let cost = qwen32b_cost();
        let config = SimRolloutConfig::vanilla(cost).with_sd_mode(SdMode::Adaptive {
            config: SdManagerConfig::default(),
        });
        let groups: Vec<Vec<usize>> = (0..4).map(|i| longtail_lengths(16, 10 + i)).collect();
        let parallel = simulate_rollout_batch(&config, &groups);
        assert_eq!(parallel.len(), groups.len());
        for (i, group) in groups.iter().enumerate() {
            let mut seq_config = config.clone();
            seq_config.seed = config.seed.wrapping_add(i as u64);
            let sequential = simulate_rollout(&seq_config, group);
            assert_eq!(parallel[i].total_time_s, sequential.total_time_s);
            assert_eq!(parallel[i].total_tokens, sequential.total_tokens);
            assert_eq!(parallel[i].timeline.len(), sequential.timeline.len());
        }
    }

    #[test]
    fn random_lengths_never_break_accounting() {
        let cost = LlmCostModel::new(ModelSpec::qwen2_5_7b(), GpuType::A100.spec(), 1);
        let mut rng = StdRng::seed_from_u64(9);
        let lengths: Vec<usize> = (0..16).map(|_| rng.gen_range(1..2000)).collect();
        let profile = simulate_rollout(&SimRolloutConfig::vanilla(cost), &lengths);
        assert_eq!(profile.total_tokens, lengths.iter().sum::<usize>());
        assert!(profile.total_time_s > 0.0);
        assert!(profile.throughput_tokens_per_s > 0.0);
    }
}
