//! Long-tail response-length distributions.
//!
//! The paper's central observation (Figure 1a, Figure 2) is that reasoning-RL rollout
//! lengths follow a persistent long-tail distribution: most responses are short, a
//! few hit the configured maximum, and the gap between the p75 and the maximum is the
//! under-utilised zone that TLT harvests. This module provides seeded generators for
//! such length distributions plus the percentile utilities used throughout the
//! benchmarks.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A response-length distribution with an enforced maximum generation length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LengthDistribution {
    /// Log-normal body: `exp(N(mu, sigma))`, truncated at `max_len`.
    LogNormal {
        /// Mean of the underlying normal (log-tokens).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
        /// Maximum generation length (paper: 20,480 or 32,768).
        max_len: usize,
    },
    /// Pareto (power-law) tail with the given scale (minimum) and shape.
    Pareto {
        /// Minimum length.
        scale: f64,
        /// Tail exponent (smaller = heavier tail).
        alpha: f64,
        /// Maximum generation length.
        max_len: usize,
    },
    /// Mixture of a log-normal body and a probability mass pinned at `max_len`
    /// (responses that hit the configured cap, as in the ByteDance trace).
    LongTailMixture {
        /// Log-normal body mean (log-tokens).
        mu: f64,
        /// Log-normal body sigma.
        sigma: f64,
        /// Probability that a response runs to the maximum length.
        truncation_mass: f64,
        /// Maximum generation length.
        max_len: usize,
    },
    /// Deterministic length (all responses identical); used by ablation benches for
    /// the "uniformly long responses" discussion case.
    Constant {
        /// The fixed length.
        len: usize,
    },
}

impl LengthDistribution {
    /// The calibration used for Figure 1(a): Qwen-7B style rollouts, 30K max length,
    /// median of a few thousand tokens and ~2% of responses hitting the cap.
    pub fn paper_fig1() -> Self {
        LengthDistribution::LongTailMixture {
            mu: 7.6,
            sigma: 0.9,
            truncation_mass: 0.02,
            max_len: 30_000,
        }
    }

    /// The calibration used for the ByteDance-style trace of Figure 2 at a given
    /// training progress in `[0, 1]` (lengths grow as RL training progresses).
    pub fn bytedance_step(progress: f64) -> Self {
        let p = progress.clamp(0.0, 1.0);
        LengthDistribution::LongTailMixture {
            mu: 6.8 + 1.2 * p,
            sigma: 0.85,
            truncation_mass: 0.01 + 0.03 * p,
            max_len: 20_480,
        }
    }

    /// The same distribution with its length cap replaced by `max_len`. For
    /// [`LengthDistribution::Constant`] the fixed length itself is clamped to
    /// the cap.
    pub fn with_max_len(self, max_len: usize) -> Self {
        assert!(max_len >= 1, "length cap must be at least 1 token");
        match self {
            LengthDistribution::LogNormal { mu, sigma, .. } => {
                LengthDistribution::LogNormal { mu, sigma, max_len }
            }
            LengthDistribution::Pareto { scale, alpha, .. } => LengthDistribution::Pareto {
                scale,
                alpha,
                max_len,
            },
            LengthDistribution::LongTailMixture {
                mu,
                sigma,
                truncation_mass,
                ..
            } => LengthDistribution::LongTailMixture {
                mu,
                sigma,
                truncation_mass,
                max_len,
            },
            LengthDistribution::Constant { len } => LengthDistribution::Constant {
                len: len.min(max_len),
            },
        }
    }

    /// Maximum possible sampled length.
    pub fn max_len(&self) -> usize {
        match *self {
            LengthDistribution::LogNormal { max_len, .. } => max_len,
            LengthDistribution::Pareto { max_len, .. } => max_len,
            LengthDistribution::LongTailMixture { max_len, .. } => max_len,
            LengthDistribution::Constant { len } => len,
        }
    }

    /// Samples a single response length (at least 1 token).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        match *self {
            LengthDistribution::LogNormal { mu, sigma, max_len } => {
                let n = sample_standard_normal(rng);
                let len = (mu + sigma * n).exp();
                (len.round() as usize).clamp(1, max_len)
            }
            LengthDistribution::Pareto {
                scale,
                alpha,
                max_len,
            } => {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let len = scale / u.powf(1.0 / alpha);
                (len.round() as usize).clamp(1, max_len)
            }
            LengthDistribution::LongTailMixture {
                mu,
                sigma,
                truncation_mass,
                max_len,
            } => {
                if rng.gen_bool(truncation_mass.clamp(0.0, 1.0)) {
                    max_len
                } else {
                    let n = sample_standard_normal(rng);
                    let len = (mu + sigma * n).exp();
                    (len.round() as usize).clamp(1, max_len)
                }
            }
            LengthDistribution::Constant { len } => len.max(1),
        }
    }

    /// Samples `n` response lengths.
    pub fn sample_many<R: Rng>(&self, n: usize, rng: &mut R) -> Vec<usize> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Draws a standard normal variate via Box–Muller.
fn sample_standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Percentile of a sample (linear interpolation between order statistics).
///
/// `q` is in `[0, 100]`. Returns `0.0` for an empty slice.
pub fn percentile(values: &[usize], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<usize> = values.to_vec();
    sorted.sort_unstable();
    let q = q.clamp(0.0, 100.0) / 100.0;
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo] as f64
    } else {
        let frac = pos - lo as f64;
        sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
    }
}

/// Summary statistics of a batch of response lengths (the quantities plotted in the
/// paper's Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LengthStats {
    /// Number of responses.
    pub count: usize,
    /// Minimum length.
    pub min: usize,
    /// Median (p50).
    pub p50: f64,
    /// 75th percentile.
    pub p75: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum length.
    pub max: usize,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LengthStats {
    /// Computes statistics over `lengths`. Returns an all-zero struct when empty.
    pub fn from_lengths(lengths: &[usize]) -> Self {
        if lengths.is_empty() {
            return LengthStats {
                count: 0,
                min: 0,
                p50: 0.0,
                p75: 0.0,
                p95: 0.0,
                max: 0,
                mean: 0.0,
            };
        }
        LengthStats {
            count: lengths.len(),
            min: *lengths.iter().min().expect("non-empty"),
            p50: percentile(lengths, 50.0),
            p75: percentile(lengths, 75.0),
            p95: percentile(lengths, 95.0),
            max: *lengths.iter().max().expect("non-empty"),
            mean: lengths.iter().sum::<usize>() as f64 / lengths.len() as f64,
        }
    }

    /// The "under-utilised zone" of Figure 2: the gap between the longest response
    /// and the p75, normalised by the maximum. Large values mean most workers sit
    /// idle while the longest response finishes.
    pub fn underutilized_fraction(&self) -> f64 {
        if self.max == 0 {
            0.0
        } else {
            (self.max as f64 - self.p75) / self.max as f64
        }
    }
}

/// Builds a histogram (PDF) of lengths with `num_bins` equal-width bins up to
/// `max_len`; returns `(bin_upper_edges, fraction_per_bin)`.
pub fn length_histogram(
    lengths: &[usize],
    max_len: usize,
    num_bins: usize,
) -> (Vec<usize>, Vec<f64>) {
    assert!(num_bins > 0, "need at least one bin");
    let width = (max_len.max(1) as f64 / num_bins as f64).ceil() as usize;
    let mut counts = vec![0usize; num_bins];
    for &len in lengths {
        let bin = (len / width.max(1)).min(num_bins - 1);
        counts[bin] += 1;
    }
    let total = lengths.len().max(1) as f64;
    let edges: Vec<usize> = (1..=num_bins).map(|i| i * width).collect();
    let fractions: Vec<f64> = counts.iter().map(|&c| c as f64 / total).collect();
    (edges, fractions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_respect_max_len() {
        let mut rng = StdRng::seed_from_u64(0);
        let dist = LengthDistribution::paper_fig1();
        for len in dist.sample_many(5000, &mut rng) {
            assert!(len >= 1 && len <= dist.max_len());
        }
    }

    #[test]
    fn fig1_distribution_is_long_tailed() {
        let mut rng = StdRng::seed_from_u64(1);
        let dist = LengthDistribution::paper_fig1();
        let lengths = dist.sample_many(20_000, &mut rng);
        let stats = LengthStats::from_lengths(&lengths);
        // A few responses hit the cap...
        assert_eq!(stats.max, 30_000);
        // ...but the p75 is far below it (the under-utilised zone of Figure 2).
        assert!(stats.p75 < 10_000.0, "p75 = {}", stats.p75);
        assert!(stats.underutilized_fraction() > 0.5);
        // Median is in the low thousands as in the paper's Figure 1(a).
        assert!((500.0..8000.0).contains(&stats.p50), "p50 = {}", stats.p50);
    }

    #[test]
    fn bytedance_lengths_grow_with_training_progress() {
        let mut rng = StdRng::seed_from_u64(2);
        let early = LengthDistribution::bytedance_step(0.0).sample_many(5000, &mut rng);
        let late = LengthDistribution::bytedance_step(1.0).sample_many(5000, &mut rng);
        let e = LengthStats::from_lengths(&early);
        let l = LengthStats::from_lengths(&late);
        assert!(l.p50 > e.p50);
        assert!(l.max >= e.max);
    }

    #[test]
    fn pareto_tail_heavier_than_lognormal_at_same_median() {
        let mut rng = StdRng::seed_from_u64(3);
        let pareto = LengthDistribution::Pareto {
            scale: 500.0,
            alpha: 1.2,
            max_len: 30_000,
        };
        let lengths = pareto.sample_many(10_000, &mut rng);
        let stats = LengthStats::from_lengths(&lengths);
        assert!(stats.p95 > 3.0 * stats.p50);
    }

    #[test]
    fn constant_distribution_has_no_tail() {
        let mut rng = StdRng::seed_from_u64(4);
        let dist = LengthDistribution::Constant { len: 1000 };
        let lengths = dist.sample_many(100, &mut rng);
        let stats = LengthStats::from_lengths(&lengths);
        assert_eq!(stats.min, 1000);
        assert_eq!(stats.max, 1000);
        assert_eq!(stats.underutilized_fraction(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let values = vec![10, 20, 30, 40];
        assert_eq!(percentile(&values, 0.0), 10.0);
        assert_eq!(percentile(&values, 100.0), 40.0);
        assert_eq!(percentile(&values, 50.0), 25.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn histogram_fractions_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(5);
        let dist = LengthDistribution::paper_fig1();
        let lengths = dist.sample_many(2000, &mut rng);
        let (edges, fracs) = length_histogram(&lengths, 30_000, 30);
        assert_eq!(edges.len(), 30);
        let total: f64 = fracs.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Mass concentrated in the early bins.
        assert!(fracs[..10].iter().sum::<f64>() > 0.6);
    }

    #[test]
    fn empty_stats_are_zero() {
        let stats = LengthStats::from_lengths(&[]);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.max, 0);
    }

    #[test]
    fn with_max_len_replaces_the_cap_and_keeps_the_body() {
        let dist = LengthDistribution::paper_fig1().with_max_len(512);
        assert_eq!(dist.max_len(), 512);
        let mut rng = StdRng::seed_from_u64(9);
        assert!(dist.sample_many(2000, &mut rng).iter().all(|&l| l <= 512));
        // Constant lengths clamp to the new cap rather than exceeding it.
        let c = LengthDistribution::Constant { len: 1000 }.with_max_len(300);
        assert_eq!(c.max_len(), 300);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let dist = LengthDistribution::paper_fig1();
        let a = dist.sample_many(100, &mut StdRng::seed_from_u64(7));
        let b = dist.sample_many(100, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
