//! GPU hardware catalog.
//!
//! These specifications drive the roofline cost model. Peak numbers are the dense
//! BF16 tensor throughput and HBM/GDDR bandwidth of each part; the cost model
//! applies utilisation factors on top, so only the *ratios* between GPUs matter for
//! reproducing the paper's cross-GPU comparisons (Table 2).

use serde::{Deserialize, Serialize};

/// Supported GPU types (the set evaluated in the paper, Tables 2 and Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuType {
    /// NVIDIA B200 (Blackwell).
    B200,
    /// NVIDIA H100 SXM 80 GB.
    H100,
    /// NVIDIA H20 96 GB (bandwidth-rich, compute-poor Hopper variant).
    H20,
    /// NVIDIA A100 SXM 80 GB.
    A100,
    /// NVIDIA GeForce RTX 5090.
    Rtx5090,
    /// NVIDIA GeForce RTX 4090.
    Rtx4090,
    /// NVIDIA GeForce RTX 3090.
    Rtx3090,
    /// AMD Instinct MI300X (high-roofline part: more HBM capacity and
    /// bandwidth than an H100 at comparable dense BF16 throughput).
    Mi300x,
    /// NVIDIA GH200 Grace CPU side (narrow-vector host processor: LPDDR5X
    /// bandwidth, SVE2 vector throughput three orders below a tensor-core GPU).
    GraceCpu,
    /// SOPHON SG2044-class RISC-V server SoC (RVV 1.0 vectors, DDR5 bandwidth;
    /// the heterogeneity end-point of the hardware sweep).
    Sg2044,
}

impl GpuType {
    /// All catalogued accelerator types, data-center GPUs first, then consumer
    /// parts, then the non-GPU heterogeneity end-points.
    pub fn all() -> [GpuType; 10] {
        [
            GpuType::B200,
            GpuType::H100,
            GpuType::H20,
            GpuType::A100,
            GpuType::Mi300x,
            GpuType::Rtx5090,
            GpuType::Rtx4090,
            GpuType::Rtx3090,
            GpuType::GraceCpu,
            GpuType::Sg2044,
        ]
    }

    /// The GPU types used in the paper's Table 2 rollout-throughput study.
    pub fn table2_set() -> [GpuType; 6] {
        [
            GpuType::B200,
            GpuType::H100,
            GpuType::A100,
            GpuType::Rtx5090,
            GpuType::Rtx4090,
            GpuType::Rtx3090,
        ]
    }

    /// Hardware specification for this GPU type.
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuType::B200 => GpuSpec {
                gpu_type: self,
                name: "NVIDIA B200",
                memory_gb: 192.0,
                memory_bandwidth_gbps: 8000.0,
                bf16_tflops: 2250.0,
                kernel_launch_us: 4.0,
                nvlink_gbps: 1800.0,
            },
            GpuType::H100 => GpuSpec {
                gpu_type: self,
                name: "NVIDIA H100 SXM",
                memory_gb: 80.0,
                memory_bandwidth_gbps: 3350.0,
                bf16_tflops: 990.0,
                kernel_launch_us: 4.0,
                nvlink_gbps: 900.0,
            },
            GpuType::H20 => GpuSpec {
                gpu_type: self,
                name: "NVIDIA H20",
                memory_gb: 96.0,
                memory_bandwidth_gbps: 4000.0,
                bf16_tflops: 148.0,
                kernel_launch_us: 4.0,
                nvlink_gbps: 900.0,
            },
            GpuType::A100 => GpuSpec {
                gpu_type: self,
                name: "NVIDIA A100 SXM",
                memory_gb: 80.0,
                memory_bandwidth_gbps: 2039.0,
                bf16_tflops: 312.0,
                kernel_launch_us: 5.0,
                nvlink_gbps: 600.0,
            },
            GpuType::Rtx5090 => GpuSpec {
                gpu_type: self,
                name: "NVIDIA RTX 5090",
                memory_gb: 32.0,
                memory_bandwidth_gbps: 1792.0,
                bf16_tflops: 210.0,
                kernel_launch_us: 6.0,
                nvlink_gbps: 0.0,
            },
            GpuType::Rtx4090 => GpuSpec {
                gpu_type: self,
                name: "NVIDIA RTX 4090",
                memory_gb: 24.0,
                memory_bandwidth_gbps: 1008.0,
                bf16_tflops: 165.0,
                kernel_launch_us: 6.0,
                nvlink_gbps: 0.0,
            },
            GpuType::Rtx3090 => GpuSpec {
                gpu_type: self,
                name: "NVIDIA RTX 3090",
                memory_gb: 24.0,
                memory_bandwidth_gbps: 936.0,
                bf16_tflops: 71.0,
                kernel_launch_us: 7.0,
                nvlink_gbps: 0.0,
            },
            GpuType::Mi300x => GpuSpec {
                gpu_type: self,
                name: "AMD Instinct MI300X",
                memory_gb: 192.0,
                memory_bandwidth_gbps: 5300.0,
                bf16_tflops: 1307.0,
                kernel_launch_us: 5.0,
                nvlink_gbps: 448.0,
            },
            GpuType::GraceCpu => GpuSpec {
                gpu_type: self,
                name: "NVIDIA Grace CPU (72c)",
                memory_gb: 480.0,
                memory_bandwidth_gbps: 500.0,
                bf16_tflops: 3.5,
                kernel_launch_us: 1.0,
                nvlink_gbps: 900.0,
            },
            GpuType::Sg2044 => GpuSpec {
                gpu_type: self,
                name: "SOPHON SG2044 (RISC-V)",
                memory_gb: 128.0,
                memory_bandwidth_gbps: 120.0,
                bf16_tflops: 1.6,
                kernel_launch_us: 1.0,
                nvlink_gbps: 0.0,
            },
        }
    }
}

/// Hardware characteristics of one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuSpec {
    /// Which catalog entry this is.
    pub gpu_type: GpuType,
    /// Marketing name.
    pub name: &'static str,
    /// HBM/GDDR capacity in GiB.
    pub memory_gb: f64,
    /// Peak memory bandwidth in GB/s.
    pub memory_bandwidth_gbps: f64,
    /// Peak dense BF16 tensor throughput in TFLOP/s.
    pub bf16_tflops: f64,
    /// Per-kernel launch overhead in microseconds (eliminated by CUDAGraph replay).
    pub kernel_launch_us: f64,
    /// Intra-node interconnect bandwidth in GB/s (0 for consumer parts without NVLink).
    pub nvlink_gbps: f64,
}

impl GpuSpec {
    /// Ratio of compute (FLOP/s) to memory bandwidth (bytes/s) — the "ridge point"
    /// arithmetic intensity of the roofline. Higher values mean decode is more
    /// memory-bound and speculative decoding has more headroom (Table 2's trend).
    pub fn ridge_intensity(&self) -> f64 {
        (self.bf16_tflops * 1e12) / (self.memory_bandwidth_gbps * 1e9)
    }

    /// Memory capacity in bytes.
    pub fn memory_bytes(&self) -> f64 {
        self.memory_gb * 1024.0 * 1024.0 * 1024.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_specs_have_positive_fields() {
        for gpu in GpuType::all() {
            let s = gpu.spec();
            assert!(s.memory_gb > 0.0);
            assert!(s.memory_bandwidth_gbps > 0.0);
            assert!(s.bf16_tflops > 0.0);
            assert!(s.kernel_launch_us > 0.0);
        }
    }

    #[test]
    fn ridge_intensity_ordering_matches_expectations() {
        // H100 has a higher compute:bandwidth ratio than A100 and the RTX 3090 the lowest
        // of the data-center/consumer split relevant to Table 2's speedup ordering.
        let h100 = GpuType::H100.spec().ridge_intensity();
        let a100 = GpuType::A100.spec().ridge_intensity();
        let rtx3090 = GpuType::Rtx3090.spec().ridge_intensity();
        assert!(h100 > a100);
        assert!(a100 > rtx3090);
    }

    #[test]
    fn h20_is_compute_poor_bandwidth_rich() {
        let h20 = GpuType::H20.spec();
        let h100 = GpuType::H100.spec();
        assert!(h20.memory_bandwidth_gbps > h100.memory_bandwidth_gbps);
        assert!(h20.bf16_tflops < h100.bf16_tflops / 4.0);
    }

    #[test]
    fn consumer_gpus_have_no_nvlink() {
        assert_eq!(GpuType::Rtx4090.spec().nvlink_gbps, 0.0);
        assert!(GpuType::H100.spec().nvlink_gbps > 0.0);
    }

    #[test]
    fn heterogeneity_endpoints_have_expected_rooflines() {
        // MI300X is the high-roofline part: more bandwidth and capacity than
        // an H100 with higher dense BF16 throughput.
        let mi300x = GpuType::Mi300x.spec();
        let h100 = GpuType::H100.spec();
        assert!(mi300x.memory_bandwidth_gbps > h100.memory_bandwidth_gbps);
        assert!(mi300x.bf16_tflops > h100.bf16_tflops);
        // The narrow-vector and RISC-V parts sit far below every GPU in both
        // compute and bandwidth, with the SG2044 the slowest of all.
        let grace = GpuType::GraceCpu.spec();
        let sg2044 = GpuType::Sg2044.spec();
        let rtx3090 = GpuType::Rtx3090.spec();
        assert!(grace.bf16_tflops < rtx3090.bf16_tflops / 10.0);
        assert!(sg2044.bf16_tflops < grace.bf16_tflops);
        assert!(sg2044.memory_bandwidth_gbps < grace.memory_bandwidth_gbps);
        // Decode stays memory-bound everywhere: every part's ridge intensity
        // is far above the ~2 FLOPs/byte of a mat-vec pass.
        for gpu in GpuType::all() {
            assert!(gpu.spec().ridge_intensity() > 2.0, "{:?}", gpu.spec().name);
        }
    }

    #[test]
    fn memory_bytes_conversion() {
        let s = GpuType::Rtx3090.spec();
        assert_eq!(s.memory_bytes(), 24.0 * 1024.0 * 1024.0 * 1024.0);
    }
}
