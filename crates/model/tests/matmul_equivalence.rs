//! Property-based equivalence suite for the register-tiled matmul kernels.
//!
//! The optimised kernels (`matmul` / `matmul_transposed` / `transposed_matmul`
//! and their `_into` variants, including the rows==1 mat-vec shape) must agree
//! with a naive triple-loop reference within 1e-5 across random shapes,
//! including empty matrices and degenerate `1xN` / `Nx1` operands.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use tlt_model::Mat;

/// Naive i-j-k reference product `a * b`.
fn naive_matmul(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0f32;
            for k in 0..a.cols() {
                acc += a.get(i, k) * b.get(k, j);
            }
            out.set(i, j, acc);
        }
    }
    out
}

fn assert_close(label: &str, fast: &Mat, reference: &Mat) {
    assert_eq!(fast.shape(), reference.shape(), "{label}: shape mismatch");
    for (i, (x, y)) in fast
        .as_slice()
        .iter()
        .zip(reference.as_slice().iter())
        .enumerate()
    {
        assert!(
            (x - y).abs() < 1e-5,
            "{label}: element {i} diverged: fast={x}, naive={y}"
        );
    }
}

fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    Mat::random_uniform(rows, cols, 1.0, &mut rng)
}

proptest! {
    /// Blocked `matmul` (and the rows==1 mat-vec shape it subsumes) matches the
    /// naive reference for arbitrary `m x k * k x n` shapes, including zero and
    /// one-sized dimensions.
    #[test]
    fn matmul_matches_naive_reference(
        m in 0usize..24,
        k in 0usize..70,
        n in 0usize..70,
        seed in 0u64..1_000,
    ) {
        let a = random_mat(m, k, seed);
        let b = random_mat(k, n, seed.wrapping_add(1));
        assert_close("matmul", &a.matmul(&b), &naive_matmul(&a, &b));
    }

    /// The mat-vec fast-path shape (`1 x k`) agrees with the naive reference and
    /// with the corresponding row of a taller product.
    #[test]
    fn matvec_row_matches_naive_and_batched(
        k in 1usize..70,
        n in 1usize..70,
        extra_rows in 1usize..6,
        seed in 0u64..1_000,
    ) {
        let a = random_mat(extra_rows, k, seed);
        let b = random_mat(k, n, seed.wrapping_add(1));
        let row0 = a.slice_rows(0, 1);
        let single = row0.matmul(&b);
        assert_close("matvec", &single, &naive_matmul(&row0, &b));
        let full = a.matmul(&b);
        prop_assert_eq!(single.row(0), full.row(0));
    }

    /// `matmul_transposed` equals `a * transpose(b)` computed naively.
    #[test]
    fn matmul_transposed_matches_naive_reference(
        m in 0usize..24,
        k in 0usize..70,
        n in 0usize..24,
        seed in 0u64..1_000,
    ) {
        let a = random_mat(m, k, seed);
        let b = random_mat(n, k, seed.wrapping_add(1));
        assert_close(
            "matmul_transposed",
            &a.matmul_transposed(&b),
            &naive_matmul(&a, &b.transpose()),
        );
    }

    /// `transposed_matmul` equals `transpose(a) * b` computed naively.
    #[test]
    fn transposed_matmul_matches_naive_reference(
        m in 0usize..24,
        k in 0usize..70,
        n in 0usize..70,
        seed in 0u64..1_000,
    ) {
        let a = random_mat(k, m, seed);
        let b = random_mat(k, n, seed.wrapping_add(1));
        assert_close(
            "transposed_matmul",
            &a.transposed_matmul(&b),
            &naive_matmul(&a.transpose(), &b),
        );
    }

    /// The `_into` variants overwrite stale buffer contents and agree with the
    /// allocating forms exactly.
    #[test]
    fn into_variants_overwrite_and_match(
        m in 1usize..12,
        k in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1_000,
    ) {
        let a = random_mat(m, k, seed);
        let b = random_mat(k, n, seed.wrapping_add(1));
        let mut out = Mat::full(m, n, f32::MAX);
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(out.as_slice(), a.matmul(&b).as_slice());

        let c = random_mat(n, k, seed.wrapping_add(2));
        let mut out_t = Mat::full(m, n, f32::MAX);
        a.matmul_transposed_into(&c, &mut out_t);
        prop_assert_eq!(out_t.as_slice(), a.matmul_transposed(&c).as_slice());

        let d = random_mat(m, n, seed.wrapping_add(3));
        let mut out_tm = Mat::full(k, n, f32::MAX);
        a.transposed_matmul_into(&d, &mut out_tm);
        prop_assert_eq!(out_tm.as_slice(), a.transposed_matmul(&d).as_slice());
    }
}

/// Explicit degenerate shapes (not left to chance in the random sweep).
#[test]
fn degenerate_shapes_match_reference() {
    for &(m, k, n) in &[
        (0usize, 0usize, 0usize),
        (0, 5, 3),
        (3, 0, 4),
        (2, 7, 0),
        (1, 17, 1),
        (1, 1, 33),
        (33, 1, 1),
    ] {
        let a = random_mat(m, k, 7);
        let b = random_mat(k, n, 8);
        assert_close("degenerate matmul", &a.matmul(&b), &naive_matmul(&a, &b));
        let bt = random_mat(n, k, 9);
        assert_close(
            "degenerate matmul_transposed",
            &a.matmul_transposed(&bt),
            &naive_matmul(&a, &bt.transpose()),
        );
        let at = random_mat(k, m, 10);
        assert_close(
            "degenerate transposed_matmul",
            &at.transposed_matmul(&random_mat(k, n, 11)),
            &naive_matmul(&at.transpose(), &random_mat(k, n, 11)),
        );
    }
}
