//! Token-level speculative decoding with lossless verification.
//!
//! This module runs real speculative decoding against the tiny target model: the
//! drafter (learned EAGLE-style or model-free n-gram) proposes a chain of tokens,
//! the target verifies them in one forward pass, and the standard rejection-sampling
//! rule (Leviathan et al.) accepts a prefix and resamples at the first mismatch —
//! guaranteeing that the output distribution is *identical* to vanilla decoding,
//! which is the paper's core "lossless" requirement.
//!
//! Tree drafting and batched verification are modelled analytically for the
//! timing-level simulations (see `tlt_draft::AcceptanceProfile` and
//! [`crate::sim_engine`]); the token-level engine here uses chain drafting, which is
//! sufficient to measure acceptance behaviour and to property-test losslessness.

use crate::ngram::NgramDrafter;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tlt_draft::{DraftModel, DraftScratch, DraftState, FeatureSource};
use tlt_model::{
    parallel_map, probs_from_logits_into, sample_from_probs, sample_from_residual, DecodeWorkspace,
    KvStore, Mat, PagedKv, PagedKvCache, PagedKvPool, PrefixIndex, SamplingParams, TinyLm, TokenId,
};

/// A speculative-decoding configuration tuple — the "arm" of the BEG-MAB tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SdStrategy {
    /// Number of sequential drafter steps per speculative round.
    pub draft_depth: usize,
    /// Tree top-K (branching factor) used by tree drafting.
    pub top_k: usize,
    /// Number of drafted tree tokens submitted to the target for verification.
    pub tokens_to_verify: usize,
}

impl SdStrategy {
    /// The default strategy set used by the adaptive rollout engine, ordered from
    /// small-batch-friendly (deep, wide verification) to large-batch-friendly.
    pub fn default_set() -> Vec<SdStrategy> {
        vec![
            SdStrategy {
                draft_depth: 10,
                top_k: 8,
                tokens_to_verify: 64,
            },
            SdStrategy {
                draft_depth: 8,
                top_k: 8,
                tokens_to_verify: 48,
            },
            SdStrategy {
                draft_depth: 6,
                top_k: 8,
                tokens_to_verify: 32,
            },
            SdStrategy {
                draft_depth: 4,
                top_k: 8,
                tokens_to_verify: 16,
            },
        ]
    }
}

impl Default for SdStrategy {
    fn default() -> Self {
        SdStrategy {
            draft_depth: 6,
            top_k: 8,
            tokens_to_verify: 48,
        }
    }
}

/// Which drafter proposes tokens.
#[derive(Debug)]
pub enum SpecDrafter<'a> {
    /// Learned EAGLE-style drafter (must use [`FeatureSource::LastLayer`]).
    Learned(&'a DraftModel),
    /// Model-free n-gram retrieval drafter.
    ModelFree(&'a NgramDrafter),
}

/// Outcome of generating one response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationResult {
    /// Generated (response) tokens, excluding the prompt.
    pub tokens: Vec<TokenId>,
    /// Number of target forward passes (decode or verify steps).
    pub target_steps: usize,
    /// Tokens committed per verification step (speculative runs only).
    pub accept_lengths: Vec<usize>,
    /// Per-draft-position acceptance counts: `attempts[i]` / `accepted[i]` give the
    /// Figure-16 style accept rate at drafted position `i`.
    pub position_attempts: Vec<usize>,
    /// Accepted counts per drafted position.
    pub position_accepted: Vec<usize>,
}

impl GenerationResult {
    /// Mean number of tokens committed per verification step.
    pub fn mean_accept_length(&self) -> f64 {
        if self.accept_lengths.is_empty() {
            1.0
        } else {
            self.accept_lengths.iter().sum::<usize>() as f64 / self.accept_lengths.len() as f64
        }
    }

    /// Acceptance rate at drafted position `i`, if measured.
    pub fn accept_rate_at(&self, i: usize) -> Option<f64> {
        let attempts = *self.position_attempts.get(i)?;
        if attempts == 0 {
            return None;
        }
        Some(self.position_accepted[i] as f64 / attempts as f64)
    }
}

/// Generates `max_new` tokens autoregressively with the target model only.
///
/// Runs on a reusable [`DecodeWorkspace`], so every step after the first is
/// allocation-free; results are bit-identical to the allocating forward path.
pub fn vanilla_generate<R: Rng>(
    target: &TinyLm,
    prompt: &[TokenId],
    max_new: usize,
    params: SamplingParams,
    eos: Option<TokenId>,
    rng: &mut R,
) -> GenerationResult {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    let mut cache = target.new_cache();
    let mut ws = DecodeWorkspace::new(&target.config);
    target.forward_into(prompt, &mut cache, &mut ws);
    let prompt_logits = ws.logits().row(ws.logits().rows() - 1).to_vec();
    vanilla_continue(
        target,
        &mut cache,
        &mut ws,
        &prompt_logits,
        max_new,
        params,
        eos,
        rng,
    )
}

/// The decode loop of [`vanilla_generate`], continuing from a cache that
/// already holds the prompt KV. `prompt_logits` is the logits row of the
/// prompt's final position (where the first sample comes from). Generic over
/// the KV backend, which is how a paged rollout group continues from a forked
/// shared prompt.
#[allow(clippy::too_many_arguments)]
fn vanilla_continue<K: KvStore, R: Rng>(
    target: &TinyLm,
    cache: &mut K,
    ws: &mut DecodeWorkspace,
    prompt_logits: &[f32],
    max_new: usize,
    params: SamplingParams,
    eos: Option<TokenId>,
    rng: &mut R,
) -> GenerationResult {
    let mut probs = Vec::with_capacity(target.config.vocab_size);
    let mut tokens = Vec::new();
    let mut steps = 0usize;
    for i in 0..max_new {
        if i == 0 {
            probs_from_logits_into(prompt_logits, params, &mut probs);
        } else {
            let last_row = ws.logits().rows() - 1;
            probs_from_logits_into(ws.logits().row(last_row), params, &mut probs);
        }
        let next = sample_from_probs(&probs, rng) as TokenId;
        tokens.push(next);
        steps += 1;
        if Some(next) == eos {
            break;
        }
        if cache.kv_seq_len() + 1 >= target.config.max_seq_len {
            break;
        }
        target.forward_into(&[next], cache, ws);
    }
    GenerationResult {
        tokens,
        target_steps: steps,
        accept_lengths: Vec::new(),
        position_attempts: Vec::new(),
        position_accepted: Vec::new(),
    }
}

/// Generates `max_new` tokens with chain speculative decoding, verifying against the
/// target with lossless rejection sampling.
///
/// # Panics
///
/// Panics if the prompt is empty or a learned drafter with a multi-layer feature
/// source is supplied (the token-level engine supports last-layer drafters).
// The argument list deliberately mirrors `vanilla_generate` plus the SD knobs, so
// call sites can switch between the two generators mechanically.
#[allow(clippy::too_many_arguments)]
pub fn speculative_generate<R: Rng>(
    target: &TinyLm,
    drafter: &SpecDrafter<'_>,
    prompt: &[TokenId],
    max_new: usize,
    strategy: SdStrategy,
    params: SamplingParams,
    eos: Option<TokenId>,
    rng: &mut R,
) -> GenerationResult {
    speculative_generate_with_swap(
        target,
        &[(usize::MAX, drafter)],
        prompt,
        max_new,
        strategy,
        params,
        eos,
        rng,
    )
}

/// Chain speculative decoding whose proposing drafter changes mid-generation:
/// `schedule` is a list of `(rounds, drafter)` segments — each drafter proposes
/// for its round budget, then the next takes over (the final drafter runs to
/// completion regardless of its budget). This is the hot-swap path the chaos
/// harness exercises: a checkpoint swap (or a fallback to the last good drafter)
/// between speculative rounds. The swap resets only the *drafter's* KV state;
/// the target-side verification is untouched, so the rejection-sampling rule
/// keeps the output distribution bit-identical to vanilla decoding no matter
/// when — or how often — the drafter changes.
///
/// # Panics
///
/// Panics if the prompt or schedule is empty, or if any learned drafter uses a
/// multi-layer feature source.
#[allow(clippy::too_many_arguments)]
pub fn speculative_generate_with_swap<R: Rng>(
    target: &TinyLm,
    schedule: &[(usize, &SpecDrafter<'_>)],
    prompt: &[TokenId],
    max_new: usize,
    strategy: SdStrategy,
    params: SamplingParams,
    eos: Option<TokenId>,
    rng: &mut R,
) -> GenerationResult {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    assert!(
        !schedule.is_empty(),
        "schedule must name at least one drafter"
    );
    for (_, drafter) in schedule {
        if let SpecDrafter::Learned(model) = drafter {
            assert_eq!(
                model.feature_source,
                FeatureSource::LastLayer,
                "token-level engine requires a last-layer drafter"
            );
        }
    }
    let depth = strategy.draft_depth.max(1);

    let mut cache = target.new_cache();
    let mut ws = DecodeWorkspace::new(&target.config);
    target.forward_into(prompt, &mut cache, &mut ws);
    // The drafter consumes last-layer features of every committed position; grow an
    // owned copy in place (reserved up front so appends never reallocate).
    let mut features = Mat::zeros(0, target.config.hidden);
    features.reserve_rows(
        (prompt.len() + max_new + depth + 1).min(target.config.max_seq_len),
        target.config.hidden,
    );
    features.extend_rows_range(ws.last_hidden(), 0, ws.last_hidden().rows());
    let prompt_logits = ws.logits().row(ws.logits().rows() - 1).to_vec();
    speculative_continue(
        target,
        schedule,
        prompt,
        max_new,
        strategy,
        params,
        eos,
        rng,
        &mut cache,
        &mut ws,
        features,
        &prompt_logits,
    )
}

/// The speculative rounds of [`speculative_generate_with_swap`], continuing
/// from a cache that already holds the prompt KV, the target's last-layer
/// `features` for every cached position, and the logits row of the prompt's
/// final position. Generic over the KV backend, which is how a paged rollout
/// group runs speculative continuations off one forked shared prompt.
#[allow(clippy::too_many_arguments)]
fn speculative_continue<K: KvStore, R: Rng>(
    target: &TinyLm,
    schedule: &[(usize, &SpecDrafter<'_>)],
    prompt: &[TokenId],
    max_new: usize,
    strategy: SdStrategy,
    params: SamplingParams,
    eos: Option<TokenId>,
    rng: &mut R,
    cache: &mut K,
    ws: &mut DecodeWorkspace,
    mut features: Mat,
    prompt_logits: &[f32],
) -> GenerationResult {
    let depth = strategy.draft_depth.max(1);
    // Per-segment drafter bookkeeping: the scratch and incremental KV state are
    // rebuilt whenever the active drafter changes (a swapped-in drafter primes
    // its own KV from the committed features on its first round).
    let mut segment = 0usize;
    let mut rounds_in_segment = 0usize;
    let mut draft_scratch: Option<DraftScratch> = None;
    let mut draft_state: Option<DraftState> = None;
    let mut all_tokens: Vec<TokenId> = prompt.to_vec();

    // Sample the first generated token from the prompt's final distribution; it
    // becomes the "pending" token (committed but not yet in the target KV cache).
    let mut probs = Vec::with_capacity(target.config.vocab_size);
    probs_from_logits_into(prompt_logits, params, &mut probs);
    let mut pending: TokenId = sample_from_probs(&probs, rng) as TokenId;
    let mut generated: Vec<TokenId> = vec![pending];

    let mut accept_lengths = Vec::new();
    let mut position_attempts = vec![0usize; depth];
    let mut position_accepted = vec![0usize; depth];
    let mut target_steps = 1usize; // the prefill produced one sampled token
    let mut draft_tokens: Vec<TokenId> = Vec::with_capacity(depth);
    let mut draft_dists: Vec<Vec<f32>> = Vec::new(); // per-position buffers, reused
    let mut block: Vec<TokenId> = Vec::with_capacity(depth + 1);

    while generated.len() < max_new && Some(pending) != eos {
        // Hot-swap point: once the active segment's round budget is spent, the
        // next drafter takes over with a fresh drafter-side KV state.
        if segment + 1 < schedule.len() && rounds_in_segment >= schedule[segment].0 {
            segment += 1;
            rounds_in_segment = 0;
            draft_state = None;
            draft_scratch = None;
        }
        let drafter = schedule[segment].1;
        rounds_in_segment += 1;
        // Budget left, bounded by the model's positional table.
        let room = target
            .config
            .max_seq_len
            .saturating_sub(cache.kv_seq_len() + 1)
            .min(max_new - generated.len());
        if room == 0 {
            break;
        }
        let draft_len = depth.min(room.saturating_sub(1));
        while draft_dists.len() < draft_len {
            draft_dists.push(Vec::with_capacity(target.config.vocab_size));
        }

        // --- Drafting stage ---
        draft_tokens.clear();
        match drafter {
            SpecDrafter::Learned(model) => {
                let scratch = draft_scratch
                    .get_or_insert_with(|| DraftScratch::new(target, model.feature_source));
                all_tokens.push(pending);
                let state = match draft_state.as_mut() {
                    Some(state) => {
                        // Re-prime only the newly committed positions; KV entries
                        // for older positions are bit-identical across rounds.
                        model.resume_draft(
                            target,
                            &features,
                            &all_tokens[..features.rows()],
                            state,
                            scratch,
                        );
                        state
                    }
                    None => draft_state.insert(model.begin_draft_with(
                        target,
                        &features,
                        &all_tokens[..features.rows()],
                        scratch,
                    )),
                };
                all_tokens.pop();
                let mut last = pending;
                for dist in draft_dists.iter_mut().take(draft_len) {
                    let logits = model.draft_step_into(target, state, last, scratch);
                    probs_from_logits_into(logits, params, dist);
                    let tok = sample_from_probs(dist, rng) as TokenId;
                    draft_tokens.push(tok);
                    last = tok;
                }
            }
            SpecDrafter::ModelFree(ngram) => {
                let mut context: Vec<TokenId> = all_tokens.clone();
                context.push(pending);
                let proposed = ngram.draft(&context);
                for (d, tok) in proposed.into_iter().take(draft_len).enumerate() {
                    let one_hot = &mut draft_dists[d];
                    one_hot.clear();
                    one_hot.resize(target.config.vocab_size, 0.0);
                    one_hot[tok as usize] = 1.0;
                    draft_tokens.push(tok);
                }
            }
        }

        // --- Verification stage: target processes [pending, d_1, ..., d_k] at once ---
        block.clear();
        block.push(pending);
        block.extend_from_slice(&draft_tokens);
        let pre_verify_len = cache.kv_seq_len();
        target.forward_into(&block, cache, ws);
        target_steps += 1;

        // Accept/reject drafted tokens with lossless rejection sampling.
        let mut accepted = 0usize;
        let mut next_pending: Option<TokenId> = None;
        for (i, &tok) in draft_tokens.iter().enumerate() {
            probs_from_logits_into(ws.logits().row(i), params, &mut probs);
            let q = &draft_dists[i];
            position_attempts[i] += 1;
            let p_tok = probs[tok as usize];
            let q_tok = q[tok as usize].max(f32::EPSILON);
            let accept = if params.is_greedy() {
                p_tok >= 1.0 - f32::EPSILON
            } else {
                rng.gen::<f32>() < (p_tok / q_tok).min(1.0)
            };
            if accept {
                accepted += 1;
                position_accepted[i] += 1;
            } else {
                let replacement = if params.is_greedy() {
                    tlt_model::argmax(&probs) as TokenId
                } else {
                    sample_from_residual(&probs, q, rng) as TokenId
                };
                next_pending = Some(replacement);
                break;
            }
        }
        if next_pending.is_none() {
            // Every drafted token accepted: sample the bonus token from the target's
            // distribution after the last drafted token.
            probs_from_logits_into(ws.logits().row(draft_tokens.len()), params, &mut probs);
            next_pending = Some(sample_from_probs(&probs, rng) as TokenId);
        }
        let next_pending = next_pending.expect("pending token chosen");

        // Commit: pending + accepted drafted tokens enter the sequence; roll the KV
        // cache back past the rejected suffix.
        let committed_in_block = 1 + accepted;
        cache.kv_truncate(pre_verify_len + committed_in_block);
        all_tokens.push(pending);
        all_tokens.extend_from_slice(&draft_tokens[..accepted]);
        features.extend_rows_range(ws.last_hidden(), 0, committed_in_block);

        for &tok in &draft_tokens[..accepted] {
            generated.push(tok);
        }
        accept_lengths.push(accepted + 1);
        // Round-level observability. The standalone loop has no sim clock, so
        // its trace uses the SD round index as the time axis (one unit per
        // round); the hook feeds the global model counters.
        tlt_obs::hooks::on_sd_round(accepted + 1);
        tlt_obs::record(
            tlt_obs::ObsEvent::span(
                (accept_lengths.len() - 1) as f64,
                1.0,
                tlt_obs::Track::Rollout,
                tlt_obs::EventKind::RolloutRound,
                tlt_obs::NO_REQ,
            )
            .with_args((accepted + 1) as f64, draft_len as f64),
        );
        if generated.len() < max_new {
            generated.push(next_pending);
        }
        pending = next_pending;

        // Early exit when an accepted token is EOS.
        if let Some(e) = eos {
            if let Some(pos) = generated.iter().position(|&t| t == e) {
                generated.truncate(pos + 1);
                break;
            }
        }
    }

    generated.truncate(max_new);
    GenerationResult {
        tokens: generated,
        target_steps,
        accept_lengths,
        position_attempts,
        position_accepted,
    }
}

/// Derives the per-sequence RNG seed for [`generate_batch`]: a fixed odd-constant
/// hash of the sequence index mixed into the base seed.
pub fn batch_seed(base_seed: u64, index: usize) -> u64 {
    base_seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Generates one response per prompt on the shared worker pool
/// ([`tlt_model::parallel_map`]), each sequence with its own KV cache, decode
/// workspace, and RNG seeded by [`batch_seed`].
///
/// Results are merged back in prompt order, so the output is identical to calling
/// [`vanilla_generate`] / [`speculative_generate`] sequentially with the same
/// per-index seeds — worker count only changes wall-clock time.
#[allow(clippy::too_many_arguments)]
pub fn generate_batch(
    target: &TinyLm,
    drafter: Option<&SpecDrafter<'_>>,
    prompts: &[Vec<TokenId>],
    max_new: usize,
    strategy: SdStrategy,
    params: SamplingParams,
    eos: Option<TokenId>,
    base_seed: u64,
) -> Vec<GenerationResult> {
    let items: Vec<&[TokenId]> = prompts.iter().map(Vec::as_slice).collect();
    parallel_map(items, |i, prompt| {
        let mut rng = StdRng::seed_from_u64(batch_seed(base_seed, i));
        match drafter {
            Some(d) => {
                speculative_generate(target, d, prompt, max_new, strategy, params, eos, &mut rng)
            }
            None => vanilla_generate(target, prompt, max_new, params, eos, &mut rng),
        }
    })
}

/// Generates a GRPO-style rollout group on a paged KV pool: the prompt is
/// prefilled **once**, its KV blocks are forked (refcount bumps, no copies)
/// across all `group_size` continuations, and each continuation decodes
/// against its fork — the first divergent append copies on write. With a
/// [`PrefixIndex`], vanilla groups additionally match the prompt against
/// blocks left resident by earlier groups and start prefill at the divergence
/// point (speculative groups always prefill the whole prompt because the
/// drafter consumes the target's features for every prompt position).
///
/// Continuation `i` draws from an RNG seeded with [`batch_seed`]`(base_seed, i)`,
/// so the results are **bit-identical** to calling [`vanilla_generate`] /
/// [`speculative_generate`] per continuation with those seeds — sharing only
/// removes recomputation. On return every block the group held has been
/// released; only blocks the index keeps resident survive.
///
/// # Panics
///
/// Panics if the prompt is empty, the group is empty, or the pool runs out of
/// blocks (size it for roughly
/// `prompt + group_size * (max_new + draft_depth + block_size)` positions).
#[allow(clippy::too_many_arguments)]
pub fn generate_group(
    target: &TinyLm,
    drafter: Option<&SpecDrafter<'_>>,
    prompt: &[TokenId],
    group_size: usize,
    max_new: usize,
    strategy: SdStrategy,
    params: SamplingParams,
    eos: Option<TokenId>,
    base_seed: u64,
    pool: &mut PagedKvPool,
    mut index: Option<&mut PrefixIndex>,
) -> Vec<GenerationResult> {
    assert!(!prompt.is_empty(), "prompt must be non-empty");
    assert!(group_size > 0, "group must hold at least one continuation");
    let mut ws = DecodeWorkspace::new(&target.config);
    let mut base = target.new_paged_cache();

    // Prefix reuse: adopt resident blocks covering a full-block prefix of the
    // prompt, keeping at least the final prompt token novel so the prefill
    // pass still produces the logits the first sample comes from.
    let mut novel_start = 0usize;
    if drafter.is_none() {
        if let Some(index) = index.as_deref_mut() {
            // Cap reuse at prompt_len - 1 so the final prompt token stays
            // novel and the prefill pass still produces the first logits.
            let (blocks, first_novel) =
                index.lookup_capped(pool, prompt, prompt.len().saturating_sub(1));
            novel_start = first_novel;
            if !blocks.is_empty() {
                base = PagedKvCache::from_shared(
                    blocks,
                    novel_start,
                    target.config.num_layers,
                    pool.block_size(),
                );
            }
        }
    }
    {
        let mut kv = PagedKv {
            pool: &mut *pool,
            cache: &mut base,
        };
        target.forward_into(&prompt[novel_start..], &mut kv, &mut ws);
    }
    let base_features = ws.last_hidden().clone();
    let prompt_logits = ws.logits().row(ws.logits().rows() - 1).to_vec();

    // Leave the prompt's full blocks resident for future groups.
    if let Some(index) = index {
        index.insert(pool, prompt, base.full_blocks(pool.block_size()));
    }

    let depth = strategy.draft_depth.max(1);
    let mut results = Vec::with_capacity(group_size);
    for i in 0..group_size {
        let mut rng = StdRng::seed_from_u64(batch_seed(base_seed, i));
        let mut continuation = base.fork(pool);
        let result = match drafter {
            None => {
                let mut kv = PagedKv {
                    pool: &mut *pool,
                    cache: &mut continuation,
                };
                vanilla_continue(
                    target,
                    &mut kv,
                    &mut ws,
                    &prompt_logits,
                    max_new,
                    params,
                    eos,
                    &mut rng,
                )
            }
            Some(d) => {
                debug_assert_eq!(novel_start, 0, "speculative groups prefill fully");
                let mut features = Mat::zeros(0, target.config.hidden);
                features.reserve_rows(
                    (prompt.len() + max_new + depth + 1).min(target.config.max_seq_len),
                    target.config.hidden,
                );
                features.extend_rows_range(&base_features, 0, base_features.rows());
                let schedule = [(usize::MAX, d)];
                let mut kv = PagedKv {
                    pool: &mut *pool,
                    cache: &mut continuation,
                };
                speculative_continue(
                    target,
                    &schedule,
                    prompt,
                    max_new,
                    strategy,
                    params,
                    eos,
                    &mut rng,
                    &mut kv,
                    &mut ws,
                    features,
                    &prompt_logits,
                )
            }
        };
        continuation.release(pool);
        results.push(result);
    }
    base.release(pool);
    results
}

/// Measures per-position acceptance rates of a drafter against a target over a set of
/// prompts, returning one rate per drafted position (Figure 16 / Table 6 measurements).
pub fn measure_acceptance<R: Rng>(
    target: &TinyLm,
    drafter: &SpecDrafter<'_>,
    prompts: &[Vec<TokenId>],
    max_new: usize,
    strategy: SdStrategy,
    params: SamplingParams,
    rng: &mut R,
) -> (Vec<f64>, f64) {
    let mut attempts = vec![0usize; strategy.draft_depth];
    let mut accepted = vec![0usize; strategy.draft_depth];
    let mut accept_len_sum = 0.0;
    let mut accept_len_count = 0usize;
    for prompt in prompts {
        let result = speculative_generate(
            target, drafter, prompt, max_new, strategy, params, None, rng,
        );
        for i in 0..strategy.draft_depth {
            attempts[i] += result.position_attempts.get(i).copied().unwrap_or(0);
            accepted[i] += result.position_accepted.get(i).copied().unwrap_or(0);
        }
        accept_len_sum += result.accept_lengths.iter().sum::<usize>() as f64;
        accept_len_count += result.accept_lengths.len();
    }
    let rates = attempts
        .iter()
        .zip(accepted.iter())
        .map(|(&a, &acc)| if a == 0 { 0.0 } else { acc as f64 / a as f64 })
        .collect();
    let mean_accept = if accept_len_count == 0 {
        1.0
    } else {
        accept_len_sum / accept_len_count as f64
    };
    (rates, mean_accept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tlt_model::ModelConfig;

    fn setup() -> (TinyLm, DraftModel) {
        let target = TinyLm::new(ModelConfig::micro(), 40);
        let drafter = DraftModel::new(&target, FeatureSource::LastLayer, 4);
        (target, drafter)
    }

    #[test]
    fn greedy_speculative_output_identical_to_vanilla() {
        // The losslessness guarantee, in its strongest observable form: under greedy
        // decoding the speculative engine must emit exactly the vanilla sequence.
        let (target, drafter) = setup();
        let params = SamplingParams::greedy();
        for seed in 0..5u64 {
            let prompt: Vec<TokenId> = vec![1 + seed as u32, 5, 9, 2];
            let mut rng_a = StdRng::seed_from_u64(seed);
            let mut rng_b = StdRng::seed_from_u64(seed);
            let vanilla = vanilla_generate(&target, &prompt, 24, params, None, &mut rng_a);
            let spec = speculative_generate(
                &target,
                &SpecDrafter::Learned(&drafter),
                &prompt,
                24,
                SdStrategy::default(),
                params,
                None,
                &mut rng_b,
            );
            assert_eq!(spec.tokens, vanilla.tokens, "seed {seed}");
        }
    }

    #[test]
    fn greedy_model_free_output_identical_to_vanilla() {
        let (target, _) = setup();
        let params = SamplingParams::greedy();
        let prompt: Vec<TokenId> = vec![3, 1, 4, 1];
        let mut rng = StdRng::seed_from_u64(0);
        let vanilla = vanilla_generate(&target, &prompt, 20, params, None, &mut rng);
        // Let the n-gram drafter observe the vanilla output so it drafts aggressively.
        let mut ngram = NgramDrafter::new(crate::ngram::NgramConfig::default());
        let mut observed = prompt.clone();
        observed.extend_from_slice(&vanilla.tokens);
        ngram.observe(&observed);
        let mut rng = StdRng::seed_from_u64(1);
        let spec = speculative_generate(
            &target,
            &SpecDrafter::ModelFree(&ngram),
            &prompt,
            20,
            SdStrategy::default(),
            params,
            None,
            &mut rng,
        );
        assert_eq!(spec.tokens, vanilla.tokens);
        // And the drafter actually helped: fewer target steps than tokens generated.
        assert!(spec.target_steps < vanilla.target_steps);
    }

    #[test]
    fn speculative_uses_fewer_target_steps_than_vanilla() {
        let (target, drafter) = setup();
        let params = SamplingParams::greedy();
        let prompt: Vec<TokenId> = vec![2, 7, 2, 7];
        let mut rng = StdRng::seed_from_u64(3);
        let vanilla = vanilla_generate(&target, &prompt, 30, params, None, &mut rng);
        let mut rng = StdRng::seed_from_u64(3);
        let spec = speculative_generate(
            &target,
            &SpecDrafter::Learned(&drafter),
            &prompt,
            30,
            SdStrategy::default(),
            params,
            None,
            &mut rng,
        );
        assert_eq!(spec.tokens.len(), vanilla.tokens.len());
        assert!(
            spec.target_steps <= vanilla.target_steps,
            "spec {} vs vanilla {}",
            spec.target_steps,
            vanilla.target_steps
        );
        assert!(spec.mean_accept_length() >= 1.0);
    }

    #[test]
    fn drafter_swap_mid_generation_is_bit_lossless_under_greedy() {
        // The chaos-harness guarantee: swapping the drafter between speculative
        // rounds (checkpoint adoption or last-good fallback) must not change a
        // single output token. Exercise learned->learned and learned->ngram
        // swaps at several swap points.
        let (target, drafter_a) = setup();
        let drafter_b = DraftModel::new(&target, FeatureSource::LastLayer, 77);
        let mut ngram = NgramDrafter::new(crate::ngram::NgramConfig::default());
        ngram.observe(&[1, 5, 9, 2, 4, 1, 5, 9]);
        let params = SamplingParams::greedy();
        let prompt: Vec<TokenId> = vec![1, 5, 9, 2];
        let mut rng = StdRng::seed_from_u64(0);
        let vanilla = vanilla_generate(&target, &prompt, 28, params, None, &mut rng);
        let spec_a = SpecDrafter::Learned(&drafter_a);
        let spec_b = SpecDrafter::Learned(&drafter_b);
        let spec_n = SpecDrafter::ModelFree(&ngram);
        let schedules: Vec<Vec<(usize, &SpecDrafter)>> = vec![
            vec![(2, &spec_a), (usize::MAX, &spec_b)],
            vec![(1, &spec_a), (1, &spec_b), (usize::MAX, &spec_a)],
            vec![(2, &spec_a), (usize::MAX, &spec_n)],
            vec![(1, &spec_n), (usize::MAX, &spec_a)],
        ];
        for (i, schedule) in schedules.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(1);
            let swapped = speculative_generate_with_swap(
                &target,
                schedule,
                &prompt,
                28,
                SdStrategy::default(),
                params,
                None,
                &mut rng,
            );
            assert_eq!(swapped.tokens, vanilla.tokens, "schedule {i}");
        }
    }

    #[test]
    fn single_segment_schedule_matches_plain_speculative_generate() {
        let (target, drafter) = setup();
        let params = SamplingParams {
            temperature: 0.8,
            top_k: None,
        };
        let prompt: Vec<TokenId> = vec![2, 7, 2, 7];
        let spec = SpecDrafter::Learned(&drafter);
        let mut rng_a = StdRng::seed_from_u64(11);
        let plain = speculative_generate(
            &target,
            &spec,
            &prompt,
            24,
            SdStrategy::default(),
            params,
            None,
            &mut rng_a,
        );
        let mut rng_b = StdRng::seed_from_u64(11);
        let scheduled = speculative_generate_with_swap(
            &target,
            &[(usize::MAX, &spec)],
            &prompt,
            24,
            SdStrategy::default(),
            params,
            None,
            &mut rng_b,
        );
        assert_eq!(plain, scheduled);
    }

    #[test]
    fn sampled_speculative_matches_vanilla_marginals() {
        // Distributional losslessness under temperature sampling: the marginal
        // frequency of the first generated token must match vanilla decoding.
        let (target, drafter) = setup();
        let params = SamplingParams {
            temperature: 1.0,
            top_k: None,
        };
        let prompt: Vec<TokenId> = vec![1, 2, 3];
        let trials = 3000;
        let vocab = target.config.vocab_size;
        // Compare the marginal of the third generated token, which is produced by the
        // accept/reject path (not just the prefill sample).
        let mut vanilla_counts = vec![0usize; vocab];
        let mut spec_counts = vec![0usize; vocab];
        for seed in 0..trials {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let v = vanilla_generate(&target, &prompt, 4, params, None, &mut rng);
            vanilla_counts[v.tokens[2] as usize] += 1;
            let mut rng = StdRng::seed_from_u64(500_000 + seed);
            let s = speculative_generate(
                &target,
                &SpecDrafter::Learned(&drafter),
                &prompt,
                4,
                SdStrategy::default(),
                params,
                None,
                &mut rng,
            );
            spec_counts[s.tokens[2] as usize] += 1;
        }
        // Total-variation distance between the two empirical marginals must be small.
        let tv: f64 = vanilla_counts
            .iter()
            .zip(spec_counts.iter())
            .map(|(&a, &b)| ((a as f64 - b as f64) / trials as f64).abs())
            .sum::<f64>()
            / 2.0;
        assert!(tv < 0.15, "total-variation distance too large: {tv}");
    }

    #[test]
    fn generate_batch_matches_sequential_generation() {
        let (target, drafter) = setup();
        let params = SamplingParams {
            temperature: 0.8,
            top_k: None,
        };
        let prompts: Vec<Vec<TokenId>> = (0..6u32).map(|i| vec![i + 1, 3, i % 5 + 2]).collect();
        let base_seed = 77;

        // Speculative batch: parallel merge must reproduce the sequential loop.
        let spec_batch = generate_batch(
            &target,
            Some(&SpecDrafter::Learned(&drafter)),
            &prompts,
            16,
            SdStrategy::default(),
            params,
            None,
            base_seed,
        );
        for (i, prompt) in prompts.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(batch_seed(base_seed, i));
            let sequential = speculative_generate(
                &target,
                &SpecDrafter::Learned(&drafter),
                prompt,
                16,
                SdStrategy::default(),
                params,
                None,
                &mut rng,
            );
            assert_eq!(spec_batch[i], sequential, "sequence {i}");
        }

        // Vanilla batch uses the same per-index seeding.
        let vanilla_batch = generate_batch(
            &target,
            None,
            &prompts,
            16,
            SdStrategy::default(),
            params,
            None,
            base_seed,
        );
        for (i, prompt) in prompts.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(batch_seed(base_seed, i));
            let sequential = vanilla_generate(&target, prompt, 16, params, None, &mut rng);
            assert_eq!(vanilla_batch[i], sequential, "sequence {i}");
        }
    }

    #[test]
    fn generate_group_matches_per_sequence_generation_bit_for_bit() {
        let (target, drafter) = setup();
        let params = SamplingParams {
            temperature: 0.8,
            top_k: None,
        };
        let prompt: Vec<TokenId> = vec![3, 1, 4, 1, 5];
        let base_seed = 41;
        let group = 5usize;

        // Vanilla group: one shared prefill, five forked continuations.
        let mut pool = target.new_paged_pool(4, 2048);
        let results = generate_group(
            &target,
            None,
            &prompt,
            group,
            20,
            SdStrategy::default(),
            params,
            None,
            base_seed,
            &mut pool,
            None,
        );
        for (i, result) in results.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(batch_seed(base_seed, i));
            let solo = vanilla_generate(&target, &prompt, 20, params, None, &mut rng);
            assert_eq!(result, &solo, "vanilla continuation {i}");
        }
        assert_eq!(pool.blocks_in_use(), 0, "group released every block");
        assert!(pool.check_conservation().is_ok());

        // Speculative group: forked prompt KV through full speculative rounds
        // (drafter KV resumes across rounds via resume_draft).
        let results = generate_group(
            &target,
            Some(&SpecDrafter::Learned(&drafter)),
            &prompt,
            group,
            20,
            SdStrategy::default(),
            params,
            None,
            base_seed,
            &mut pool,
            None,
        );
        for (i, result) in results.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(batch_seed(base_seed, i));
            let solo = speculative_generate(
                &target,
                &SpecDrafter::Learned(&drafter),
                &prompt,
                20,
                SdStrategy::default(),
                params,
                None,
                &mut rng,
            );
            assert_eq!(result, &solo, "speculative continuation {i}");
        }
        assert_eq!(pool.blocks_in_use(), 0);
    }

    #[test]
    fn prefix_index_lets_a_second_group_prefill_only_the_divergent_suffix() {
        let (target, _) = setup();
        let params = SamplingParams::greedy();
        let base_seed = 17;
        let mut pool = target.new_paged_pool(4, 2048);
        let mut index = tlt_model::PrefixIndex::new(4);

        // Two prompts sharing an 8-token (two-block) system prefix.
        let system: Vec<TokenId> = vec![2, 7, 1, 8, 2, 8, 1, 8];
        let mut prompt_a = system.clone();
        prompt_a.extend_from_slice(&[3, 5]);
        let mut prompt_b = system.clone();
        prompt_b.extend_from_slice(&[9, 4, 6]);

        let first = generate_group(
            &target,
            None,
            &prompt_a,
            2,
            12,
            SdStrategy::default(),
            params,
            None,
            base_seed,
            &mut pool,
            Some(&mut index),
        );
        assert_eq!(index.resident_blocks(), 2, "system prefix left resident");
        let second = generate_group(
            &target,
            None,
            &prompt_b,
            2,
            12,
            SdStrategy::default(),
            params,
            None,
            base_seed,
            &mut pool,
            Some(&mut index),
        );
        // The second group matched the two resident system blocks: its prefill
        // started at position 8, and the outputs are still bit-identical to
        // per-sequence generation with a cold cache.
        assert!(index.hit_rate() > 0.0, "second lookup must hit");
        for (i, result) in second.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(batch_seed(base_seed, i));
            let solo = vanilla_generate(&target, &prompt_b, 12, params, None, &mut rng);
            assert_eq!(result, &solo, "reused-prefix continuation {i}");
        }
        // Rerunning prompt A hits its own full-block prefix too.
        let replay = generate_group(
            &target,
            None,
            &prompt_a,
            2,
            12,
            SdStrategy::default(),
            params,
            None,
            base_seed,
            &mut pool,
            Some(&mut index),
        );
        assert_eq!(replay, first, "prefix reuse is invisible in the output");

        // Only the resident index blocks survive; releasing the index drains
        // the pool completely.
        assert_eq!(pool.blocks_in_use(), index.resident_blocks());
        index.release_all(&mut pool);
        assert_eq!(pool.blocks_in_use(), 0);
        assert!(pool.check_conservation().is_ok());
    }

    #[test]
    fn respects_max_new_and_eos() {
        let (target, drafter) = setup();
        let params = SamplingParams::greedy();
        let prompt: Vec<TokenId> = vec![1, 2];
        let mut rng = StdRng::seed_from_u64(9);
        let result = speculative_generate(
            &target,
            &SpecDrafter::Learned(&drafter),
            &prompt,
            7,
            SdStrategy::default(),
            params,
            None,
            &mut rng,
        );
        assert!(result.tokens.len() <= 7);
        // With EOS = the first generated token, generation stops immediately after it.
        let eos = result.tokens[0];
        let mut rng = StdRng::seed_from_u64(9);
        let with_eos = speculative_generate(
            &target,
            &SpecDrafter::Learned(&drafter),
            &prompt,
            7,
            SdStrategy::default(),
            params,
            Some(eos),
            &mut rng,
        );
        assert_eq!(with_eos.tokens.iter().filter(|&&t| t == eos).count(), 1);
        assert_eq!(*with_eos.tokens.last().unwrap(), eos);
    }

    #[test]
    fn trained_drafter_achieves_higher_acceptance_than_untrained() {
        let (target, untrained) = setup();
        // Train a drafter on target rollouts.
        let mut trainer =
            tlt_draft::DrafterTrainer::new(&target, tlt_draft::TrainerConfig::default(), 8);
        let mut rng = StdRng::seed_from_u64(11);
        let params = SamplingParams::greedy();
        let mut samples = Vec::new();
        for i in 0..6u64 {
            let prompt: Vec<TokenId> = vec![(i % 7) as u32 + 1, 3, 5];
            let gen = vanilla_generate(&target, &prompt, 20, params, None, &mut rng);
            let mut tokens = prompt.clone();
            tokens.extend_from_slice(&gen.tokens);
            samples.push(tlt_draft::TrainingSample::from_rollout(
                &target,
                FeatureSource::LastLayer,
                &tokens,
                gen.tokens.len(),
                0,
                i,
            ));
        }
        let refs: Vec<&tlt_draft::TrainingSample> = samples.iter().collect();
        for _ in 0..40 {
            trainer.train_iteration(&target, &refs);
        }
        let prompts: Vec<Vec<TokenId>> = (0..4u32).map(|i| vec![i + 1, 3, 5]).collect();
        let strategy = SdStrategy {
            draft_depth: 4,
            top_k: 1,
            tokens_to_verify: 4,
        };
        let mut rng = StdRng::seed_from_u64(21);
        let (_, untrained_accept) = measure_acceptance(
            &target,
            &SpecDrafter::Learned(&untrained),
            &prompts,
            20,
            strategy,
            params,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(21);
        let (_, trained_accept) = measure_acceptance(
            &target,
            &SpecDrafter::Learned(&trainer.drafter),
            &prompts,
            20,
            strategy,
            params,
            &mut rng,
        );
        assert!(
            trained_accept > untrained_accept,
            "training should raise accept length: {untrained_accept:.2} -> {trained_accept:.2}"
        );
    }

    #[test]
    fn accept_rate_by_position_is_monotone_non_increasing_for_untrained() {
        let (target, drafter) = setup();
        let prompts: Vec<Vec<TokenId>> = (0..4u32).map(|i| vec![i + 1, 2, 3]).collect();
        let mut rng = StdRng::seed_from_u64(31);
        let (rates, _) = measure_acceptance(
            &target,
            &SpecDrafter::Learned(&drafter),
            &prompts,
            16,
            SdStrategy {
                draft_depth: 5,
                top_k: 1,
                tokens_to_verify: 5,
            },
            SamplingParams::greedy(),
            &mut rng,
        );
        assert_eq!(rates.len(), 5);
        // Later positions can only be attempted after earlier acceptances, so the
        // measured rates are a valid per-position profile (all within [0, 1]).
        for r in rates {
            assert!((0.0..=1.0).contains(&r));
        }
    }
}
