//! # tlt-coord
//!
//! Worker coordination for the TLT reproduction (§4.2 "Worker Coordinator").
//!
//! In the original system a centralized coordinator process (rank 0, ZeroMQ
//! request/reply) tracks the state of every rollout worker, promotes idle workers to
//! drafter training once enough of them have drained, elects a training leader, and
//! preempts training the moment rollout needs the GPUs back. This crate reproduces
//! that protocol with an in-process message bus (crossbeam channels) so it can be
//! driven deterministically by the simulations and exercised concurrently in tests.
//!
//! ```
//! use tlt_coord::{Coordinator, CoordinatorConfig, WorkerEvent, WorkerState};
//!
//! let mut coord = Coordinator::new(4, CoordinatorConfig::default());
//! let commands = coord.handle_event(
//!     WorkerEvent::StateChanged { worker: 0, state: WorkerState::Idle, at: 1.0 },
//!     1.0,
//! );
//! assert_eq!(commands.len(), 1); // worker 0 promoted to drafter training
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bus;
pub mod coordinator;
pub mod worker;

pub use bus::{CoordinatorCommand, MessageBus, WorkerEndpoint};
pub use coordinator::{Coordinator, CoordinatorConfig, CoordinatorStats, TrainingSession};
pub use worker::{WorkerEvent, WorkerState};
